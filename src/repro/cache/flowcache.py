"""Propagation-graph cache keyed on the workload fingerprint.

The flow pass (:mod:`repro.analysis.flow`) is a pure function of the
analyzed package's source, and the workload fingerprint from
:func:`repro.cache.runcache.workload_fingerprint` already folds in the
checked-out git SHA plus the workload's module and source — exactly the
staleness key the run cache uses.  Reusing it here means a
:class:`~repro.analysis.flow.PropagationGraph` built for one commit can
never be served to another, with zero extra bookkeeping.

Two tiers, mirroring the run cache:

* an in-process memo (always on), keyed on the fingerprint — or, for
  unfingerprintable workloads, a ``WeakKeyDictionary`` on the
  :class:`~repro.analysis.system_model.SystemModel` itself; and
* an optional on-disk tier of JSON documents under
  ``benchmarks/out/flowcache/``, active under the same conditions as
  the run cache's (``repro.cache.active()`` has a disk tier).  Writes
  are atomic (temp file + ``os.replace``); corrupt entries are skipped
  with one ``RuntimeWarning`` per process and removed.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
import weakref
from typing import Optional

from ..analysis.flow import PropagationGraph, build_propagation_graph
from .runcache import _REPO_ROOT, active, workload_fingerprint

SCHEMA_VERSION = 1

_MEMO: dict[str, PropagationGraph] = {}
_MODEL_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
_warned_corrupt = False


def default_disk_dir() -> str:
    """The on-disk tier's default location, next to the run cache's."""
    return os.path.join(_REPO_ROOT, "benchmarks", "out", "flowcache")


def _disk_enabled() -> bool:
    """Disk persistence rides the run cache's configuration: a process
    that opted into a disk-backed run cache gets a disk-backed flow
    cache too; everything else stays in memory."""
    cache = active()
    return cache is not None and cache.disk_dir is not None


def _entry_path(fingerprint: str) -> str:
    return os.path.join(default_disk_dir(), f"{fingerprint}.json")


def _disk_get(fingerprint: str) -> Optional[PropagationGraph]:
    global _warned_corrupt
    path = _entry_path(fingerprint)
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
        if (
            not isinstance(payload, dict)
            or payload.get("version") != SCHEMA_VERSION
            or payload.get("fingerprint") != fingerprint
        ):
            raise ValueError("flow-cache entry key/version mismatch")
        return PropagationGraph.from_dict(payload["graph"])
    except FileNotFoundError:
        return None
    except Exception as error:
        if not _warned_corrupt:
            _warned_corrupt = True
            warnings.warn(
                f"skipping corrupt flow-cache entry {path} "
                f"({type(error).__name__}: {error}); further corrupt "
                f"entries are skipped silently",
                RuntimeWarning,
                stacklevel=3,
            )
        try:
            os.remove(path)
        except OSError:
            pass
        return None


def _disk_store(fingerprint: str, graph: PropagationGraph) -> None:
    directory = default_disk_dir()
    path = _entry_path(fingerprint)
    try:
        os.makedirs(directory, exist_ok=True)
        payload = json.dumps(
            {
                "version": SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "graph": graph.to_dict(),
            },
            separators=(",", ":"),
        )
        fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp_path, path)
        except BaseException:
            try:
                os.remove(temp_path)
            except OSError:
                pass
            raise
    except Exception:
        # Unwritable directory: the memory tier still works.
        pass


def cached_propagation_graph(
    model, workload=None, package: str = ""
) -> PropagationGraph:
    """The flow pass's result for ``model``, served from cache when possible.

    ``workload`` supplies the cache key; when it is ``None`` or cannot
    be fingerprinted the graph is memoized per model object only (still
    free within one process, never persisted).
    """
    fingerprint = workload_fingerprint(workload) if workload is not None else None
    if fingerprint is None:
        try:
            graph = _MODEL_MEMO.get(model)
        except TypeError:
            graph = None
        if graph is None:
            graph = build_propagation_graph(model, package=package)
            try:
                _MODEL_MEMO[model] = graph
            except TypeError:
                pass
        return graph

    graph = _MEMO.get(fingerprint)
    if graph is not None:
        return graph
    if _disk_enabled():
        graph = _disk_get(fingerprint)
        if graph is not None:
            _MEMO[fingerprint] = graph
            return graph
    graph = build_propagation_graph(model, package=package)
    _MEMO[fingerprint] = graph
    if _disk_enabled():
        _disk_store(fingerprint, graph)
    return graph


def reset() -> None:
    """Drop the in-process memo (tests)."""
    global _warned_corrupt
    _MEMO.clear()
    try:
        _MODEL_MEMO.clear()
    except Exception:
        pass
    _warned_corrupt = False
