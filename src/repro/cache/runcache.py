"""The run cache: content-addressed memoization of workload runs.

One simulated run is a pure function of ``(workload, horizon, seed,
plan)`` — the determinism invariant the parallel engine (PR 3) already
relies on.  This module turns that invariant into a cache: the
:class:`RunCache` keys completed :class:`~repro.sim.cluster.RunResult`\\ s
on ``(workload fingerprint, seed, horizon, canonical plan key)`` and
serves them back to every consumer of ``execute_workload`` — the
Explorer's inline rounds, the speculative executor, the baseline
strategy runner, and (through all of those) the iterative multi-fault
workflow and the campaign engine.

Two tiers:

* an in-process LRU (always on when the cache is active); and
* an optional on-disk tier, one pickled entry per key under
  ``benchmarks/out/runcache/`` by default, shared between campaign
  worker processes.  Writes are atomic (temp file + ``os.replace``);
  corrupt or truncated entries are *skipped* — never fatal — with one
  ``RuntimeWarning`` per cache instance, the same degrade-gracefully
  policy as the run ledger.

Noop-plan aliasing
------------------

A plan whose window never fires leaves the run byte-identical to the
run with an *empty* window (the FIR only perturbs execution when an
instance actually raises).  The cache exploits this twice:

* **on completion** — a run that finished with no fired window instance
  is additionally stored under its *noop key* (same workload/seed/
  horizon, empty window, same base-fault set), so every never-firing
  plan converges on one shared entry; and
* **on lookup** — whether a window will fire is decidable *before
  running*: an armed ``(site, occurrence)`` fires iff it appears in the
  trace of the noop run (execution is identical up to the first
  injection).  When the noop entry is cached and no armed pair occurs
  in its trace, the lookup is served as an **alias hit** without
  executing anything.  Baselines that keep regenerating never-firing
  windows stop paying for them.

Staleness: the workload fingerprint folds in the checked-out git SHA
and the workload function's source, so entries written by other
commits (via the rolling CI cache) can never be served.

Counters (``cache.hits`` / ``cache.misses`` / ``cache.alias_hits`` /
``cache.disk_hits`` / ``cache.stores`` / ``cache.disk_errors``) are
mirrored into :mod:`repro.obs.metrics` so they aggregate across
campaign worker processes like every other operational counter.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import pickle
import tempfile
import warnings
import weakref
from collections import OrderedDict
from dataclasses import asdict, dataclass, field
from typing import Optional

from ..obs import metrics as obs_metrics
from ..obs.ledger import git_sha

# Version 2: TraceEvent and other run-record dataclasses grew
# ``slots=True``, which changes their pickle state shape — version-1
# entries would silently deserialize with corrupt field values.
# Version 4: fault identity generalized to (site, fault-spec) —
# ``FaultInstance.exception`` became ``FaultInstance.spec``, changing the
# pickled ``__dict__`` shape of every plan-bearing entry; version-3
# entries would deserialize with the spec under the old attribute name.
# Version 5: the result codec grew ``truncated_at`` (early-verdict
# cutoff); version-4 entries would decode without the field.
PAYLOAD_VERSION = 5

#: Lookup/served outcomes reported by :meth:`RunCache.execute`.
HIT = "hit"
ALIAS = "alias"
MISS = "miss"
UNCACHED = "uncached"

_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..")
)


def default_disk_dir() -> str:
    """The on-disk tier's default location, next to the bench outputs."""
    return os.path.join(_REPO_ROOT, "benchmarks", "out", "runcache")


# ------------------------------------------------------------- fingerprints

_FINGERPRINTS: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def workload_fingerprint(workload) -> Optional[str]:
    """Content fingerprint of a workload callable, or ``None`` if unsafe.

    Folds together the function's dotted name, its source text (so an
    edited workload misses), and the checked-out git SHA (so entries
    persisted by other commits — e.g. via a rolling CI cache — can
    never be served to this one).  Callables whose identity cannot be
    established deterministically (no qualified name *and* no
    retrievable source) are uncacheable and yield ``None``.
    """
    try:
        cached = _FINGERPRINTS.get(workload)
    except TypeError:  # unhashable/unweakrefable callable
        cached = None
    if cached is not None:
        return cached or None
    module = getattr(workload, "__module__", "")
    qualname = getattr(workload, "__qualname__", "")
    try:
        source = inspect.getsource(workload)
    except (OSError, TypeError):
        source = ""
    if not (module and qualname) and not source:
        fingerprint = ""
    else:
        digest = hashlib.sha256()
        digest.update(git_sha().encode())
        digest.update(b"\x00")
        digest.update(f"{module}:{qualname}".encode())
        digest.update(b"\x00")
        digest.update(source.encode())
        fingerprint = digest.hexdigest()[:24]
    try:
        _FINGERPRINTS[workload] = fingerprint
    except TypeError:
        pass
    return fingerprint or None


# ------------------------------------------------------------------- stats


@dataclass
class CacheStats:
    """Served/stored counters for one :class:`RunCache`."""

    hits: int = 0          # memory or disk entry served
    misses: int = 0        # executed for real
    alias_hits: int = 0    # served via noop-plan aliasing
    disk_hits: int = 0     # subset of ``hits`` that came off disk
    stores: int = 0        # entries written (memory tier)
    disk_errors: int = 0   # corrupt/unwritable/unpicklable disk entries

    @property
    def served(self) -> int:
        return self.hits + self.alias_hits

    @property
    def lookups(self) -> int:
        return self.served + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.served / lookups if lookups else 0.0

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["hit_rate"] = round(self.hit_rate, 6)
        return payload


def _plan_key(plan) -> tuple:
    return plan.key() if plan is not None else ((), ())


# -------------------------------------------------------------------- cache


class RunCache:
    """Two-tier (memory LRU + optional disk) cache of deterministic runs."""

    def __init__(
        self, capacity: int = 1024, disk_dir: Optional[str] = None
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self.disk_dir = disk_dir
        self.stats = CacheStats()
        self._memory: "OrderedDict[tuple, object]" = OrderedDict()
        #: noop key -> frozenset of (site_id, occurrence) pairs executed
        #: by that noop run; the alias-prediction index.
        self._noop_pairs: dict[tuple, frozenset] = {}
        self._warned_corrupt = False

    # ------------------------------------------------------------------ keys

    def _key(self, workload, horizon, seed, plan) -> Optional[tuple]:
        fingerprint = workload_fingerprint(workload)
        if fingerprint is None:
            return None
        return (fingerprint, int(seed), float(horizon), _plan_key(plan))

    @staticmethod
    def _noop_key(key: tuple) -> tuple:
        """The same run with an empty window (base faults preserved)."""
        fingerprint, seed, horizon, (_window, always) = key
        return (fingerprint, seed, horizon, ((), always))

    @staticmethod
    def _verdict_key(key: tuple, monitor_key: str) -> tuple:
        """The truncation-aware extension of a plain key.

        Truncated results are oracle-equivalent to the full run but carry
        a shorter log, so they live only under this extended key: a
        plain-key (full-run) consumer can never be served one, while
        monitored consumers probe the plain key *first* — a full result
        is valid for everyone.
        """
        return key + (("verdict", monitor_key),)

    @staticmethod
    def _entry_name(key: tuple) -> str:
        material = json.dumps(key, separators=(",", ":"))
        return hashlib.sha256(material.encode()).hexdigest()[:40] + ".pkl"

    # ---------------------------------------------------------------- lookup

    def _memory_get(self, key: tuple):
        result = self._memory.get(key)
        if result is not None:
            self._memory.move_to_end(key)
        return result

    def _disk_get(self, key: tuple):
        if self.disk_dir is None:
            return None
        path = os.path.join(self.disk_dir, self._entry_name(key))
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
            if (
                not isinstance(payload, dict)
                or payload.get("version") != PAYLOAD_VERSION
                or payload.get("key") != key
            ):
                raise ValueError("run-cache entry key/version mismatch")
            from ..sim.checkpoint import _decode_result

            return _decode_result(payload["result"])
        except FileNotFoundError:
            return None
        except Exception as error:
            # Corrupt, truncated, or written by an incompatible pickler:
            # skip the entry (and drop the file so the cost is paid once)
            # with a single warning per cache — the ledger's policy.
            self.stats.disk_errors += 1
            obs_metrics.increment("cache.disk_errors")
            if not self._warned_corrupt:
                self._warned_corrupt = True
                warnings.warn(
                    f"skipping corrupt run-cache entry {path} "
                    f"({type(error).__name__}: {error}); further corrupt "
                    f"entries are skipped silently",
                    RuntimeWarning,
                    stacklevel=3,
                )
            try:
                os.remove(path)
            except OSError:
                pass
            return None

    def _lookup(self, key: tuple):
        """Memory-then-disk probe; promotes disk entries into memory."""
        result = self._memory_get(key)
        if result is not None:
            return result, False
        result = self._disk_get(key)
        if result is not None:
            self._memory_store(key, result)
            return result, True
        return None, False

    def _alias_lookup(self, key: tuple, plan):
        """Serve a never-firing plan from the cached noop run, if decidable.

        An armed instance fires iff its ``(site, occurrence)`` pair
        appears in the noop run's trace — before the first injection the
        perturbed run replays the noop run exactly.  No pair present
        means no injection ever happens, so the noop result *is* this
        plan's result.
        """
        if plan is None or not plan.instances:
            return None
        noop_key = self._noop_key(key)
        if noop_key == key:
            return None
        pairs = self._noop_pairs.get(noop_key)
        if pairs is None:
            noop_result, _ = self._lookup(noop_key)
            if noop_result is None:
                return None
            pairs = frozenset(
                (event.site_id, event.occurrence)
                for event in getattr(noop_result, "trace", ())
            )
            self._noop_pairs[noop_key] = pairs
        if any(
            (instance.site_id, instance.occurrence) in pairs
            for instance in plan.instances
        ):
            return None
        noop_result, _ = self._lookup(noop_key)
        return noop_result

    def peek(self, workload, horizon, seed, plan, monitor_key=None):
        """A cached (or alias-predictable) result, without stats movement.

        Used by the speculative executor to avoid burning worker slots
        on runs the committed path will serve from cache anyway.
        """
        key = self._key(workload, horizon, seed, plan)
        if key is None:
            return None
        result, _ = self._lookup(key)
        if result is None and monitor_key:
            result, _ = self._lookup(self._verdict_key(key, monitor_key))
        if result is not None:
            return result
        return self._alias_lookup(key, plan)

    # ----------------------------------------------------------------- store

    def _memory_store(self, key: tuple, result) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.capacity:
            self._memory.popitem(last=False)

    def _disk_store(self, key: tuple, result) -> None:
        if self.disk_dir is None:
            return
        path = os.path.join(self.disk_dir, self._entry_name(key))
        try:
            os.makedirs(self.disk_dir, exist_ok=True)
            # Flatten the result first: pickling thousands of small
            # LogRecord/TraceEvent dataclasses one by one costs ~10x the
            # primitive-tuple encoding (see sim.checkpoint's codec, shared
            # here so fork frames and cache entries stay byte-compatible).
            from ..sim.checkpoint import _encode_result

            payload = pickle.dumps(
                {
                    "version": PAYLOAD_VERSION,
                    "key": key,
                    "result": _encode_result(result),
                }
            )
            fd, temp_path = tempfile.mkstemp(
                dir=self.disk_dir, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(temp_path, path)
            except BaseException:
                try:
                    os.remove(temp_path)
                except OSError:
                    pass
                raise
        except Exception:
            # Unpicklable result or unwritable directory: the memory
            # tier still works, so degrade silently beyond the counter.
            self.stats.disk_errors += 1
            obs_metrics.increment("cache.disk_errors")

    def put(self, workload, horizon, seed, plan, result, monitor_key=None) -> None:
        """Store a completed run (plus its noop alias when applicable).

        Truncated results require ``monitor_key`` and are stored only
        under the extended key; without one they are dropped rather than
        poisoning the plain entry.
        """
        key = self._key(workload, horizon, seed, plan)
        if key is None:
            return
        if getattr(result, "truncated_at", None) is not None:
            if monitor_key:
                self._store_truncated(
                    self._verdict_key(key, monitor_key), result
                )
            return
        self._store(key, plan, result)

    def _store(self, key: tuple, plan, result) -> None:
        self.stats.stores += 1
        obs_metrics.increment("cache.stores")
        self._memory_store(key, result)
        self._disk_store(key, result)
        if (
            plan is not None
            and plan.instances
            and getattr(result, "injected_instance", None) is None
        ):
            # Completion-time aliasing: nothing in the window fired, so
            # this run *is* the noop run for its (seed, base-fault) class.
            noop_key = self._noop_key(key)
            if noop_key != key and self._memory_get(noop_key) is None:
                self._memory_store(noop_key, result)
                self._disk_store(noop_key, result)

    def _store_truncated(self, ext_key: tuple, result) -> None:
        """Store a truncated result under its extended key only — never
        the plain key, never the noop alias (truncated runs always have
        a fired injection, but their log/counters are monitor-specific).
        """
        self.stats.stores += 1
        obs_metrics.increment("cache.stores")
        self._memory_store(ext_key, result)
        self._disk_store(ext_key, result)

    # --------------------------------------------------------------- execute

    def execute(
        self,
        workload,
        horizon,
        seed=0,
        plan=None,
        runner=None,
        monitor_factory=None,
        monitor_key=None,
    ):
        """The run for ``(workload, horizon, seed, plan)``.

        Returns ``(result, outcome)`` with ``outcome`` one of ``"hit"``,
        ``"alias"``, ``"miss"``, or ``"uncached"`` (unfingerprintable
        workload).  ``runner`` is the executor used on a miss; passing
        the caller's own ``execute_workload`` reference keeps
        monkeypatched test doubles in charge of actual execution.

        ``monitor_factory``/``monitor_key`` enable early-verdict cutoff:
        a miss runs under a fresh monitor (passed via ``monitor=`` only
        then, so unmonitored runners keep their plain signature), and a
        truncated result is stored under — and may later be served from —
        the monitor-extended key.  The plain key is always probed first.
        """
        key = self._key(workload, horizon, seed, plan)
        if runner is None:
            from ..sim.cluster import execute_workload as runner
        if key is None:
            if monitor_factory is not None:
                return (
                    runner(
                        workload,
                        horizon=horizon,
                        seed=seed,
                        plan=plan,
                        monitor=monitor_factory(),
                    ),
                    UNCACHED,
                )
            return (
                runner(workload, horizon=horizon, seed=seed, plan=plan),
                UNCACHED,
            )
        result, from_disk = self._lookup(key)
        if result is None and monitor_factory is not None and monitor_key:
            result, from_disk = self._lookup(
                self._verdict_key(key, monitor_key)
            )
        if result is not None:
            self.stats.hits += 1
            obs_metrics.increment("cache.hits")
            if from_disk:
                self.stats.disk_hits += 1
                obs_metrics.increment("cache.disk_hits")
            return result, HIT
        result = self._alias_lookup(key, plan)
        if result is not None:
            self.stats.alias_hits += 1
            obs_metrics.increment("cache.alias_hits")
            # Remember the alias so the next identical lookup is a plain
            # memory hit without re-walking the trace index.
            self._memory_store(key, result)
            return result, ALIAS
        self.stats.misses += 1
        obs_metrics.increment("cache.misses")
        if monitor_factory is not None:
            result = runner(
                workload,
                horizon=horizon,
                seed=seed,
                plan=plan,
                monitor=monitor_factory(),
            )
        else:
            result = runner(workload, horizon=horizon, seed=seed, plan=plan)
        if getattr(result, "truncated_at", None) is not None:
            if monitor_key:
                self._store_truncated(
                    self._verdict_key(key, monitor_key), result
                )
        else:
            self._store(key, plan, result)
        return result, MISS


# ---------------------------------------------------------- process global

_active: Optional[RunCache] = None
_configured = False


def configure(
    enabled: bool = True,
    disk_dir: Optional[str] = None,
    capacity: int = 1024,
) -> Optional[RunCache]:
    """Install (or remove) the process-wide cache and return it.

    Does not touch the environment; callers that fan out worker
    processes (the CLI) export ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``
    themselves so spawn-method workers reconstruct the same config.
    """
    global _active, _configured
    _configured = True
    _active = RunCache(capacity=capacity, disk_dir=disk_dir) if enabled else None
    return _active


def active() -> Optional[RunCache]:
    """The process-wide cache, lazily initialized from the environment.

    Unconfigured processes default to *no* cache: library consumers and
    tests that stub out ``execute_workload`` must opt in explicitly
    (``configure`` or ``REPRO_CACHE=1``).
    """
    global _active, _configured
    if not _configured:
        _configured = True
        flag = os.environ.get("REPRO_CACHE", "").strip().lower()
        if flag and flag not in ("0", "false", "no", "off"):
            _active = RunCache(
                disk_dir=os.environ.get("REPRO_CACHE_DIR") or None
            )
    return _active


def reset() -> None:
    """Drop the process-wide cache and forget any configuration."""
    global _active, _configured
    _active = None
    _configured = False


def cached_execute(
    workload,
    *,
    horizon,
    seed=0,
    plan=None,
    runner=None,
    monitor_factory=None,
    monitor_key=None,
):
    """Run through the active cache, or directly when no cache is active."""
    cache = active()
    if runner is None:
        from ..sim.cluster import execute_workload as runner
    if cache is None:
        if monitor_factory is not None:
            return runner(
                workload,
                horizon=horizon,
                seed=seed,
                plan=plan,
                monitor=monitor_factory(),
            )
        return runner(workload, horizon=horizon, seed=seed, plan=plan)
    result, _outcome = cache.execute(
        workload,
        horizon=horizon,
        seed=seed,
        plan=plan,
        runner=runner,
        monitor_factory=monitor_factory,
        monitor_key=monitor_key,
    )
    return result
