"""Content-addressed memoization of deterministic workload runs.

The simulator is a pure function of ``(workload, horizon, seed, plan)``;
this package caches its :class:`~repro.sim.cluster.RunResult` values so
the search stack never pays twice for the same run.  See
:mod:`repro.cache.runcache` for the cache itself and DESIGN.md §8 for the
keying and determinism argument.
"""

from .flowcache import cached_propagation_graph
from .runcache import (
    CacheStats,
    RunCache,
    active,
    cached_execute,
    configure,
    default_disk_dir,
    reset,
    workload_fingerprint,
)

__all__ = [
    "CacheStats",
    "RunCache",
    "active",
    "cached_execute",
    "cached_propagation_graph",
    "configure",
    "default_disk_dir",
    "reset",
    "workload_fingerprint",
]
