"""The fault-injection runtime (the paper's ``FIR``, Figure 3).

Every environment-boundary call in system code funnels through
:meth:`FIR.on_site`, which plays both instrumented roles from the paper:

* ``traceSite`` — record (site, occurrence, virtual time, logical log
  index) so the feedback algorithm can compute temporal distances
  (§5.2.3); and
* ``throwIfEnabled`` — consult the active injection plan and, when this
  site's current occurrence matches, either raise the planned exception
  (``raise`` specs) or hand the caller a value-corruption applier
  (``corrupt:<kind>`` specs) that the env op runs its computed result
  through before returning it.

A plan holds a *window* of fault instances (§5.2.5): the first instance
that actually occurs in the run is injected, and at most one injection
fires per run.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Callable, Iterable, Optional

from ..obs import VIRTUAL
from .corruptions import corruption_for
from .sites import FaultInstance, SiteRef, is_corruption_spec, parse_fault_spec


def dedupe_instances(instances: Iterable[FaultInstance]) -> list[FaultInstance]:
    """Drop instances whose ``(site_id, occurrence)`` was already seen.

    A plan's single-shot window keys instances by ``(site_id,
    occurrence)``, so two entries that differ only by exception cannot
    coexist — :class:`InjectionPlan` rejects them.  Window assembly
    filters with this helper instead, keeping the *first* (i.e. highest
    priority) entry per key; the shadowed candidate stays untried and
    gets its own round later.
    """
    seen: set[tuple[str, int]] = set()
    unique: list[FaultInstance] = []
    for instance in instances:
        key = (instance.site_id, instance.occurrence)
        if key in seen:
            continue
        seen.add(key)
        unique.append(instance)
    return unique


@dataclasses.dataclass(frozen=True, slots=True)
class TraceEvent:
    """One dynamic execution of a fault site."""

    site_id: str
    occurrence: int
    time: float       # virtual seconds
    log_index: int    # number of log records emitted before this event


@dataclasses.dataclass
class InjectionPlan:
    """A window of fault instances to try in one run.

    ``instances`` is the single-shot window: the first one to occur is
    injected and the rest are disarmed.  ``always`` holds *base* faults
    that fire unconditionally whenever their (site, occurrence) executes —
    the mechanism behind the iterative multi-fault workflow (§3: fix one
    fault into the workload, search for the next).
    """

    instances: list[FaultInstance]
    always: list[FaultInstance] = dataclasses.field(default_factory=list)

    def __post_init__(self) -> None:
        self._by_key = self._index("instances", self.instances)
        self._always_by_key = self._index("always", self.always)

    @staticmethod
    def _index(
        label: str, instances: list[FaultInstance]
    ) -> dict[tuple[str, int], FaultInstance]:
        """Key instances by ``(site_id, occurrence)``, rejecting collisions.

        Silently collapsing duplicates would make every entry but the
        last uninjectable; callers assembling windows from ranked
        candidates must filter with :func:`dedupe_instances` first.
        """
        by_key: dict[tuple[str, int], FaultInstance] = {}
        for inst in instances:
            key = (inst.site_id, inst.occurrence)
            previous = by_key.get(key)
            if previous is not None:
                raise ValueError(
                    f"duplicate {label} instance for site {inst.site_id} "
                    f"occurrence {inst.occurrence}: {previous.spec} vs "
                    f"{inst.spec} (dedupe the window before building "
                    f"the plan)"
                )
            by_key[key] = inst
        return by_key

    def match(self, site_id: str, occurrence: int) -> Optional[FaultInstance]:
        return self._by_key.get((site_id, occurrence))

    def match_always(self, site_id: str, occurrence: int) -> Optional[FaultInstance]:
        return self._always_by_key.get((site_id, occurrence))

    @classmethod
    def single(cls, instance: FaultInstance) -> "InjectionPlan":
        return cls([instance])

    @classmethod
    def of(
        cls,
        instances: Iterable[FaultInstance],
        always: Iterable[FaultInstance] = (),
    ) -> "InjectionPlan":
        return cls(list(instances), list(always))

    # ------------------------------------------------------------ serialization
    #
    # Plans cross process boundaries in the parallel engine: campaign
    # workers and the Explorer's speculative round executors each receive
    # a plan payload of plain tuples.  ``key()`` is the canonical identity
    # used to index speculative run caches — two plans with equal keys
    # drive byte-identical runs of the deterministic simulator.

    def to_payload(self) -> dict:
        # A raise spec's canonical form is the bare exception name, so
        # payloads (and ``key()`` below) are value-identical to the
        # pre-spec ``(site, exception, occurrence)`` schema.
        return {
            "instances": [
                (inst.site_id, inst.spec, inst.occurrence)
                for inst in self.instances
            ],
            "always": [
                (inst.site_id, inst.spec, inst.occurrence)
                for inst in self.always
            ],
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "InjectionPlan":
        return cls(
            [FaultInstance(*item) for item in payload["instances"]],
            [FaultInstance(*item) for item in payload["always"]],
        )

    def key(self) -> tuple:
        return (
            tuple(
                (inst.site_id, inst.spec, inst.occurrence)
                for inst in self.instances
            ),
            tuple(
                (inst.site_id, inst.spec, inst.occurrence)
                for inst in self.always
            ),
        )

    def __getstate__(self) -> dict:
        # Drop the derived lookup dicts; rebuild them on the other side.
        return {"instances": list(self.instances), "always": list(self.always)}

    def __setstate__(self, state: dict) -> None:
        self.instances = state["instances"]
        self.always = state["always"]
        self.__post_init__()


def is_injected(exc: BaseException) -> bool:
    """Whether ``exc`` was raised by the FIR rather than organically.

    The mini systems never call this; it exists so tests can tell an
    injected fault apart from an organic one.
    """
    return getattr(exc, "injected_by_fir", False)


class FIR:
    """Per-run fault-injection runtime state."""

    def __init__(self) -> None:
        self.tracing = True
        self.plan: Optional[InjectionPlan] = None
        self.counts: dict[str, int] = {}
        self.trace: list[TraceEvent] = []
        self.fired: Optional[FaultInstance] = None
        self.always_fired: list[FaultInstance] = []
        self.request_count = 0
        self.decision_seconds = 0.0
        #: ``repro.obs`` recorder; ``None`` keeps the hot path free of
        #: timing calls and event allocations (profiling off).
        self.recorder = None
        #: Checkpoint hook: when set, ``on_site`` calls ``_trigger(self)``
        #: the moment ``request_count`` reaches ``_trigger_at`` — after the
        #: request is traced, before its injection decision.  The sim
        #: checkpoint layer pauses a holder process here and forks
        #: candidate runs that continue with a swapped-in plan.
        self._trigger: Optional[Callable[["FIR"], None]] = None
        self._trigger_at = 0
        self._log_index_fn: Callable[[], int] = lambda: 0
        self._clock: Callable[[], float] = lambda: 0.0

    def bind(
        self,
        log_index_fn: Callable[[], int],
        clock: Callable[[], float],
    ) -> None:
        """Attach the run's log counter and virtual clock."""
        self._log_index_fn = log_index_fn
        self._clock = clock

    def set_plan(self, plan: Optional[InjectionPlan]) -> None:
        self.plan = plan
        self.fired = None
        self.always_fired = []

    def swap_plan(self, plan: Optional[InjectionPlan]) -> None:
        """Replace the plan mid-run, preserving fired/base-fault state.

        Unlike :meth:`set_plan` this keeps ``fired``, ``always_fired``,
        counts, and the trace — the contract a checkpoint fork needs: the
        prefix ran under the base-only plan, and the candidate plan takes
        over for the suffix as if it had been active all along (it could
        not have fired earlier by construction of the fork point).
        """
        self.plan = plan

    def set_trigger(
        self, at_request: int, callback: Callable[["FIR"], None]
    ) -> None:
        """Invoke ``callback(self)`` when request ``at_request`` is reached.

        ``at_request`` is a 1-based request ordinal.  The callback runs
        after the request is counted and traced but *before* its
        injection decision, and is one-shot (cleared before invocation).
        """
        if at_request < 1:
            raise ValueError("at_request is a 1-based request ordinal")
        self._trigger_at = int(at_request)
        self._trigger = callback

    def capture(self) -> dict:
        """Data snapshot of the runtime's per-run state.

        ``tracing`` and the checkpoint trigger (``_trigger`` /
        ``_trigger_at``) are part of that state: a speculation-pool
        snapshot/restore cycle across an armed trigger must neither lose
        the pending callback nor leak it into an unrelated run.
        """
        return {
            "counts": dict(self.counts),
            "trace": list(self.trace),
            "fired": self.fired,
            "always_fired": list(self.always_fired),
            "request_count": self.request_count,
            "decision_seconds": self.decision_seconds,
            "tracing": self.tracing,
            "trigger": self._trigger,
            "trigger_at": self._trigger_at,
        }

    def restore(self, snapshot: dict) -> None:
        """Restore the per-run state captured by :meth:`capture`."""
        self.counts = dict(snapshot["counts"])
        self.trace = list(snapshot["trace"])
        self.fired = snapshot["fired"]
        self.always_fired = list(snapshot["always_fired"])
        self.request_count = snapshot["request_count"]
        self.decision_seconds = snapshot["decision_seconds"]
        self.tracing = snapshot["tracing"]
        self._trigger = snapshot["trigger"]
        self._trigger_at = snapshot["trigger_at"]

    def on_site(self, site: SiteRef) -> Optional[Callable[[Any], Any]]:
        """Trace this execution of ``site`` and inject if the plan says so.

        Raise specs raise the planned exception here.  Corruption specs
        instead *return* the registered corruption applier: the env op
        runs its computed result through it before handing the value to
        the caller, so the op "succeeds" with poisoned data.  Returns
        ``None`` when nothing (or an exception) was injected.

        Decision timing is sampled only when a ``repro.obs`` recorder is
        attached (profiling): the default path pays no ``perf_counter``
        calls, which matters at millions of site executions per campaign
        and keeps timing noise out of outcome comparisons.
        """
        recorder = self.recorder
        started = time.perf_counter() if recorder is not None else 0.0
        site_id = site.site_id
        counts = self.counts
        occurrence = counts.get(site_id, 0) + 1
        counts[site_id] = occurrence
        self.request_count += 1
        if self.tracing:
            self.trace.append(
                TraceEvent(
                    site_id,
                    occurrence,
                    self._clock(),
                    self._log_index_fn(),
                )
            )
        if self._trigger is not None and self.request_count == self._trigger_at:
            # One-shot checkpoint hook: the holder process parks here (its
            # trigger loop never returns); a forked child returns with the
            # candidate plan swapped in and decides this request below.
            trigger, self._trigger = self._trigger, None
            trigger(self)
        plan = self.plan
        instance = None
        is_base_fault = False
        if plan is not None:
            instance = plan.match_always(site_id, occurrence)
            if instance is not None:
                is_base_fault = True
            elif self.fired is None:
                instance = plan.match(site_id, occurrence)
        if recorder is not None:
            self.decision_seconds += time.perf_counter() - started
        if instance is not None:
            applier = None
            if is_corruption_spec(instance.spec):
                # A corruption only fires where the op can carry it; an
                # unsupported (hand-written) plan entry is a non-match so
                # the window stays armed rather than "firing" invisibly.
                applier = corruption_for(
                    parse_fault_spec(instance.spec).name, site.op
                )
                if applier is None:
                    return None
            if is_base_fault:
                self.always_fired.append(instance)
            else:
                self.fired = instance
            if recorder is not None:
                recorder.event(
                    "fir.inject",
                    "fir",
                    clock=VIRTUAL,
                    ts=self._clock(),
                    site=site_id,
                    occurrence=occurrence,
                    exception=instance.spec,
                    base_fault=is_base_fault,
                    log_index=self._log_index_fn(),
                )
            if applier is not None:
                return applier
            # Imported lazily: repro.sim imports this module at package
            # init time, so a top-level import would be circular.
            from ..sim.errors import exception_from_name

            exc = exception_from_name(
                parse_fault_spec(instance.spec).name,
                f"injected {instance.spec} at {site_id} (occurrence "
                f"{instance.occurrence})",
            )
            exc.injected_by_fir = True
            raise exc
        return None

    # -------------------------------------------------------------- reporting

    @property
    def mean_decision_latency(self) -> float:
        if self.request_count == 0:
            return 0.0
        return self.decision_seconds / self.request_count

    def occurrences_of(self, site_id: str) -> int:
        return self.counts.get(site_id, 0)

    def dynamic_instance_count(self) -> int:
        """Total dynamic fault-site executions observed this run."""
        return sum(self.counts.values())
