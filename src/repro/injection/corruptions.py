"""Registered value corruptions: the soft-fault dimension.

A corruption is a deterministic pure function applied to the value an env
op *would have returned* — the op succeeds, but the caller sees corrupt
data (truncated read, stale payload, reordered fields, flipped bit,
plausible-but-wrong value).  This is the fault-type registry idiom from
fault-injection adapters: each kind has a name, the plan stores the name
(``corrupt:<kind>``), and the FIR resolves it at the site.

Appliers are duck-typed over the simulator's value shapes (bytes, str,
int, list, tuple, dict, and ``Message``-like dataclasses with a
``payload`` field, which are corrupted payload-first so the envelope
stays routable).  They never raise: a value a kind cannot express a
corruption for passes through unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional

Applier = Callable[[Any], Any]


def _is_message(value: Any) -> bool:
    return dataclasses.is_dataclass(value) and hasattr(value, "payload")


def _on_payload(value: Any, applier: Applier) -> Any:
    return dataclasses.replace(value, payload=applier(value.payload))


def truncate_read(value: Any) -> Any:
    """Keep only the first half (short read / partial transfer)."""
    if _is_message(value):
        return _on_payload(value, truncate_read)
    if isinstance(value, bool):
        return value
    if isinstance(value, (bytes, bytearray, str, list)):
        return value[: len(value) // 2]
    if isinstance(value, int):
        return value // 2
    if isinstance(value, tuple):
        return tuple(truncate_read(item) for item in value)
    if isinstance(value, dict):
        return {key: truncate_read(item) for key, item in value.items()}
    return value


def stale_payload(value: Any) -> Any:
    """Replace the value with its time-zero analog (stale cache read)."""
    if _is_message(value):
        return _on_payload(value, stale_payload)
    if isinstance(value, bool):
        return False
    if isinstance(value, int):
        return 0
    if isinstance(value, float):
        return 0.0
    if isinstance(value, str):
        return ""
    if isinstance(value, (bytes, bytearray)):
        return b""
    if isinstance(value, list):
        return []
    if isinstance(value, tuple):
        return tuple(stale_payload(item) for item in value)
    if isinstance(value, dict):
        return {key: stale_payload(item) for key, item in value.items()}
    return value


def reorder_fields(value: Any) -> Any:
    """Reverse element / field order (reordered delivery, shuffled listing)."""
    if _is_message(value):
        return _on_payload(value, reorder_fields)
    if isinstance(value, (list, str)):
        return value[::-1]
    if isinstance(value, tuple):
        return tuple(reversed(value))
    if isinstance(value, (bytes, bytearray)):
        return bytes(reversed(value))
    if isinstance(value, dict):
        return dict(reversed(list(value.items())))
    return value


def bitflip_field(value: Any) -> Any:
    """Flip one bit of the first field (single-event upset analog)."""
    if _is_message(value):
        return _on_payload(value, bitflip_field)
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ 1
    if isinstance(value, float):
        return -value
    if isinstance(value, (bytes, bytearray)):
        if not value:
            return bytes(value)
        return bytes([value[0] ^ 0x80]) + bytes(value[1:])
    if isinstance(value, str):
        return (value[0].swapcase() + value[1:]) if value else value
    if isinstance(value, tuple):
        return (bitflip_field(value[0]),) + tuple(value[1:]) if value else value
    if isinstance(value, list):
        return [bitflip_field(value[0])] + value[1:] if value else value
    return value


def plausible_wrong_value(value: Any) -> Any:
    """Off-by-one into a value that still looks valid."""
    if _is_message(value):
        return _on_payload(value, plausible_wrong_value)
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value + 1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, list):
        return value[:-1]
    if isinstance(value, tuple):
        return tuple(plausible_wrong_value(item) for item in value)
    if isinstance(value, dict):
        return {key: plausible_wrong_value(item) for key, item in value.items()}
    return value


#: Registered corruption kinds, in canonical enumeration order.
CORRUPTIONS: dict[str, Applier] = {
    "truncate_read": truncate_read,
    "stale_payload": stale_payload,
    "reorder_fields": reorder_fields,
    "bitflip_field": bitflip_field,
    "plausible_wrong_value": plausible_wrong_value,
}

#: Per-op corruption capabilities — read-path env ops only (a write op
#: has no return value to poison).  The analyzer enumerates soft-fault
#: candidates from this table exactly as it enumerates exception
#: candidates from ``ENV_OPS``, so the static and dynamic soft fault
#: spaces agree by construction.
ENV_OP_CORRUPTIONS: dict[str, tuple[str, ...]] = {
    "disk_read": ("truncate_read", "stale_payload", "bitflip_field"),
    "disk_list": ("truncate_read", "reorder_fields"),
    "sock_recv": (
        "truncate_read",
        "stale_payload",
        "reorder_fields",
        "bitflip_field",
    ),
    "codec_decode": (
        "truncate_read",
        "stale_payload",
        "reorder_fields",
        "bitflip_field",
        "plausible_wrong_value",
    ),
    "net_transfer": ("truncate_read", "plausible_wrong_value"),
}


def corruption_kinds_for_op(op: str) -> tuple[str, ...]:
    """The corruption kinds applicable to env op ``op`` (maybe empty)."""
    return ENV_OP_CORRUPTIONS.get(op, ())


def corruption_for(kind: str, op: str) -> Optional[Applier]:
    """Resolve a corruption applier, or ``None`` if ``op`` can't carry it."""
    if kind not in ENV_OP_CORRUPTIONS.get(op, ()):
        return None
    return CORRUPTIONS.get(kind)
