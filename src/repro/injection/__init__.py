"""Fault-injection runtime: site identity, plans, and the FIR."""

from .fir import FIR, InjectionPlan, TraceEvent, is_injected
from .sites import FaultCandidate, FaultInstance, SiteRef, normalize_path

__all__ = [
    "FIR",
    "FaultCandidate",
    "FaultInstance",
    "InjectionPlan",
    "SiteRef",
    "TraceEvent",
    "is_injected",
    "normalize_path",
]
