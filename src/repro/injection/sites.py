"""Fault-site and fault-spec identity.

A *static fault site* is a program point that can misbehave (§2.1): here,
a call into the environment boundary (:mod:`repro.sim.env`) identified by
(normalized file, line, enclosing function, env operation).  The same
identity is computed two ways — statically by the AST analyzer and
dynamically from the caller's frame — and the two must agree, which is
what ties the causal graph to the runtime trace.

A *fault spec* says what goes wrong at a site.  Two dimensions exist:

* ``raise`` — the op raises a named exception (the paper's fault model).
  Its canonical spec string is the bare exception name (``IOException``),
  which keeps every legacy ``(site, exception)`` triple — plan payloads,
  cache keys, ledger lines, coverage triples — byte-identical.
* ``corrupt`` — the op succeeds but its return value is corrupted in
  flight by a registered corruption (:mod:`repro.injection.corruptions`).
  Canonical form ``corrupt:<kind>``, e.g. ``corrupt:truncate_read``.
"""

from __future__ import annotations

import dataclasses
import functools
import os
import sys

#: Spec-string prefixes.  A bare name (no prefix) is a raise spec.
CORRUPT_PREFIX = "corrupt:"
RAISE_PREFIX = "raise:"

#: Directory that contains the ``repro`` package (the import root).  Site
#: paths are stored relative to it: ``repro/sim/env.py``.
_PACKAGE_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_PACKAGE_PARENT = os.path.dirname(_PACKAGE_ROOT)

#: Top-level entries of the installed package (``sim``, ``injection``,
#: ``__main__.py``, ...).  Used to recognize *equivalent* checkouts: a
#: foreign ``/repro/<x>/...`` path anchors only when ``<x>`` is one of
#: these, which a stray ``/home/repro/work/...`` never is.
try:
    _TOP_LEVEL_ENTRIES = frozenset(os.listdir(_PACKAGE_ROOT))
except OSError:  # zipapp or frozen install: fall back to prefix-only
    _TOP_LEVEL_ENTRIES = frozenset()


@functools.lru_cache(maxsize=None)
def normalize_path(filename: str) -> str:
    """Normalize an absolute source path to a repo-relative module path.

    Both the static analyzer (which walks files on disk) and the FIR
    (which sees ``frame.f_code.co_filename``) funnel through this function,
    so site identities line up regardless of install location.

    The anchor is the *actual* package root (the directory holding the
    ``repro`` package), not the last ``/repro/`` substring of the path — a
    checkout under e.g. ``/home/repro/work/...`` must not be split at the
    user's home directory.  Separators are normalized first so Windows
    paths produce the same identities.
    """
    path = filename.replace("\\", "/")
    parent = _PACKAGE_PARENT.replace("\\", "/").rstrip("/") + "/"
    if path.startswith(parent):
        return path[len(parent):]
    # Foreign prefix (site-packages install, another checkout): accept
    # the right-most ``/repro/`` segment whose remainder starts with a
    # real top-level entry of this package, so equivalent checkouts agree
    # on identities while ``/home/repro/work/...`` never anchors at the
    # user's home directory.
    index = len(path)
    while True:
        index = path.rfind("/repro/", 0, index)
        if index < 0:
            break
        remainder = path[index + len("/repro/"):]
        if remainder.split("/", 1)[0] in _TOP_LEVEL_ENTRIES:
            return "repro/" + remainder
    return path.rsplit("/", 1)[-1]


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """A parsed fault spec: what to do to an env op at a site."""

    kind: str   # "raise" | "corrupt"
    name: str   # exception type name, or corruption kind

    @property
    def spec_id(self) -> str:
        """Canonical string form (bare exception name for raise specs)."""
        if self.kind == "corrupt":
            return CORRUPT_PREFIX + self.name
        return self.name

    def __str__(self) -> str:
        return self.spec_id


@functools.lru_cache(maxsize=None)
def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a spec string; a bare name parses as a raise spec."""
    if text.startswith(CORRUPT_PREFIX):
        return FaultSpec("corrupt", text[len(CORRUPT_PREFIX):])
    if text.startswith(RAISE_PREFIX):
        return FaultSpec("raise", text[len(RAISE_PREFIX):])
    return FaultSpec("raise", text)


def is_corruption_spec(text: str) -> bool:
    """Whether a spec string names a value corruption (vs an exception)."""
    return text.startswith(CORRUPT_PREFIX)


def canonical_spec(text: str) -> str:
    """Canonicalize a spec string (``raise:X`` collapses to bare ``X``)."""
    return parse_fault_spec(text).spec_id


@dataclasses.dataclass(frozen=True)
class SiteRef:
    """A static fault site."""

    file: str
    line: int
    function: str
    op: str

    @functools.cached_property
    def site_id(self) -> str:
        # Interned and cached: site ids are compared and hashed millions
        # of times per campaign (FIR counts, plan lookups, trace events),
        # so one canonical string per site keeps dict probes on the
        # pointer-equality fast path.
        return sys.intern(f"{self.file}:{self.line}:{self.function}:{self.op}")

    def __str__(self) -> str:
        return self.site_id


@dataclasses.dataclass(frozen=True)
class FaultCandidate:
    """A static fault candidate: a site plus a concrete fault spec."""

    site_id: str
    spec: str

    @property
    def exception(self) -> str:
        # Legacy accessor: raise specs are stored as bare exception
        # names, so reading ``.exception`` keeps every pre-spec call
        # site (reports, provenance, baselines) working unchanged.
        return self.spec

    @property
    def fault_spec(self) -> FaultSpec:
        return parse_fault_spec(self.spec)

    @property
    def is_corruption(self) -> bool:
        return is_corruption_spec(self.spec)

    def __str__(self) -> str:
        return f"{self.site_id}!{self.spec}"


@dataclasses.dataclass(frozen=True)
class FaultInstance:
    """A dynamic fault candidate: the j-th occurrence of a fault site.

    ``occurrence`` is 1-based: occurrence 1 is the first time the site
    executes in a run.
    """

    site_id: str
    spec: str
    occurrence: int

    @property
    def exception(self) -> str:
        return self.spec

    @property
    def fault_spec(self) -> FaultSpec:
        return parse_fault_spec(self.spec)

    @property
    def is_corruption(self) -> bool:
        return is_corruption_spec(self.spec)

    @property
    def candidate(self) -> FaultCandidate:
        return FaultCandidate(self.site_id, self.spec)

    def __str__(self) -> str:
        return f"{self.site_id}!{self.spec}@{self.occurrence}"
