"""Fault-site identity.

A *static fault site* is a program point that can throw an exception
(§2.1): here, a call into the environment boundary (:mod:`repro.sim.env`)
identified by (normalized file, line, enclosing function, env operation).
The same identity is computed two ways — statically by the AST analyzer
and dynamically from the caller's frame — and the two must agree, which is
what ties the causal graph to the runtime trace.
"""

from __future__ import annotations

import dataclasses
import functools
import sys


def normalize_path(filename: str) -> str:
    """Normalize an absolute source path to a repo-relative module path.

    Both the static analyzer (which walks files on disk) and the FIR
    (which sees ``frame.f_code.co_filename``) funnel through this function,
    so site identities line up regardless of install location.
    """
    marker = "/repro/"
    index = filename.rfind(marker)
    if index >= 0:
        return filename[index + 1:]
    return filename.rsplit("/", 1)[-1]


@dataclasses.dataclass(frozen=True)
class SiteRef:
    """A static fault site."""

    file: str
    line: int
    function: str
    op: str

    @functools.cached_property
    def site_id(self) -> str:
        # Interned and cached: site ids are compared and hashed millions
        # of times per campaign (FIR counts, plan lookups, trace events),
        # so one canonical string per site keeps dict probes on the
        # pointer-equality fast path.
        return sys.intern(f"{self.file}:{self.line}:{self.function}:{self.op}")

    def __str__(self) -> str:
        return self.site_id


@dataclasses.dataclass(frozen=True)
class FaultCandidate:
    """A static fault candidate: a site plus a concrete exception type."""

    site_id: str
    exception: str

    def __str__(self) -> str:
        return f"{self.site_id}!{self.exception}"


@dataclasses.dataclass(frozen=True)
class FaultInstance:
    """A dynamic fault candidate: the j-th occurrence of a fault site.

    ``occurrence`` is 1-based: occurrence 1 is the first time the site
    executes in a run.
    """

    site_id: str
    exception: str
    occurrence: int

    @property
    def candidate(self) -> FaultCandidate:
        return FaultCandidate(self.site_id, self.exception)

    def __str__(self) -> str:
        return f"{self.site_id}!{self.exception}@{self.occurrence}"
