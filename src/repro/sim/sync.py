"""Synchronization primitives for simulated tasks.

All primitives are effects: a task blocks by ``yield``-ing the object the
primitive returns.  Wakeups are always scheduled through ``call_soon`` so
that execution never recurses through generator frames, keeping the run
order a deterministic function of the event queue.

The :class:`Future`/:class:`Executor` pair matters beyond plumbing: the
paper's exception analysis explicitly models cross-thread exception
propagation through futures (§4.1), and several failure cases hinge on a
fault thrown inside a submitted job surfacing as an ``ExecutionException``
at the waiting thread.
"""

from __future__ import annotations

import collections
from typing import Any, Callable, Generator, Optional

from .errors import ExecutionException, IllegalStateException
from .scheduler import Simulator, Task


class _WaitEffect:
    """Base for effects that park the task on a waiter list."""

    def __init__(self) -> None:
        self._task: Optional[Task] = None

    def _park(
        self,
        sim: Simulator,
        task: Task,
        unregister: Callable[[], None],
        timeout: Optional[float] = None,
        on_timeout: Any = None,
    ) -> None:
        """Register cleanup and (optionally) a timeout wakeup."""
        cancel_timer: Callable[[], None] = lambda: None
        if timeout is not None:
            cancel_timer = sim.resume_at(
                sim.now + timeout, task, value=on_timeout
            )

        def cleanup() -> None:
            unregister()
            cancel_timer()

        task._cancel_wakeup = cleanup


class Condition:
    """Java-style condition variable.

    ``wait(timeout)`` yields ``True`` when signaled and ``False`` on
    timeout — the shape of ``Condition.await(long)`` that the motivating
    HBase example's ``doneCondition.await(timeoutNs)`` relies on.
    """

    def __init__(self, sim: Simulator, name: str = "cond") -> None:
        self._sim = sim
        self.name = name
        self._waiters: list[Task] = []

    def wait(self, timeout: Optional[float] = None) -> "_ConditionWait":
        return _ConditionWait(self, timeout)

    def notify_all(self) -> None:
        waiters, self._waiters = self._waiters, []
        for task in waiters:
            self._sim.resume_soon(task, value=True)

    def notify(self) -> None:
        if self._waiters:
            task = self._waiters.pop(0)
            self._sim.resume_soon(task, value=True)

    def _discard(self, task: Task) -> None:
        try:
            self._waiters.remove(task)
        except ValueError:
            pass

    def capture(self) -> dict:
        """Snapshot for fingerprinting (waiters referenced by name)."""
        return {"name": self.name, "waiters": [t.name for t in self._waiters]}


class _ConditionWait(_WaitEffect):
    def __init__(self, condition: Condition, timeout: Optional[float]) -> None:
        super().__init__()
        self._condition = condition
        self._timeout = timeout

    def subscribe(self, sim: Simulator, task: Task) -> None:
        self._condition._waiters.append(task)
        self._park(
            sim,
            task,
            unregister=lambda: self._condition._discard(task),
            timeout=self._timeout,
            on_timeout=False,
        )


class Lock:
    """Non-reentrant mutual exclusion."""

    def __init__(self, sim: Simulator, name: str = "lock") -> None:
        self._sim = sim
        self.name = name
        self._holder: Optional[Task] = None
        self._waiters: list[Task] = []

    @property
    def held(self) -> bool:
        return self._holder is not None

    @property
    def holder_name(self) -> Optional[str]:
        return self._holder.name if self._holder else None

    def acquire(self) -> "_LockAcquire":
        return _LockAcquire(self)

    def release(self) -> None:
        if self._holder is None:
            raise IllegalStateException(f"lock {self.name} released while free")
        self._holder = None
        if self._waiters:
            task = self._waiters.pop(0)
            self._holder = task
            self._sim.resume_soon(task, value=True)

    def force_release(self) -> None:
        """Drop the lock regardless of holder (crash-cleanup analog)."""
        if self._holder is not None:
            self.release()

    def _discard(self, task: Task) -> None:
        try:
            self._waiters.remove(task)
        except ValueError:
            pass

    def capture(self) -> dict:
        """Snapshot for fingerprinting (tasks referenced by name)."""
        return {
            "name": self.name,
            "holder": self.holder_name,
            "waiters": [t.name for t in self._waiters],
        }


class _LockAcquire(_WaitEffect):
    def __init__(self, lock: Lock) -> None:
        super().__init__()
        self._lock = lock

    def subscribe(self, sim: Simulator, task: Task) -> None:
        if self._lock._holder is None:
            self._lock._holder = task
            sim.resume_soon(task, value=True)
            task._cancel_wakeup = None
            return
        self._lock._waiters.append(task)
        self._park(sim, task, unregister=lambda: self._lock._discard(task))


class Queue:
    """Bounded FIFO queue with blocking put/get.

    ``get(timeout)`` yields the item, or ``None`` on timeout (the shape of
    ``BlockingQueue.poll(long)``).  Items are reserved at subscribe time so
    two concurrent getters never race for the same element.
    """

    def __init__(
        self, sim: Simulator, name: str = "queue", capacity: Optional[int] = None
    ) -> None:
        self._sim = sim
        self.name = name
        self.capacity = capacity
        self._items: collections.deque[Any] = collections.deque()
        self._getters: list[Task] = []
        self._putters: list[tuple[Task, Any]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    def put(self, item: Any) -> "_QueuePut":
        return _QueuePut(self, item)

    def put_nowait(self, item: Any) -> None:
        """Non-blocking put; raises when the queue is full."""
        if self.capacity is not None and len(self._items) >= self.capacity:
            raise IllegalStateException(f"queue {self.name} full")
        self._deliver(item)

    def get(self, timeout: Optional[float] = None) -> "_QueueGet":
        return _QueueGet(self, timeout)

    def get_nowait(self) -> Any:
        """Non-blocking get; returns None when empty."""
        if self._items:
            item = self._items.popleft()
            self._admit_putter()
            return item
        return None

    def peek(self) -> Any:
        return self._items[0] if self._items else None

    def drain(self) -> list[Any]:
        items = list(self._items)
        self._items.clear()
        while self._putters:
            self._admit_putter()
        return items

    # --------------------------------------------------------------- internals

    def _deliver(self, item: Any) -> None:
        """Hand an item to a waiting getter or store it."""
        if self._getters:
            getter = self._getters.pop(0)
            self._sim.resume_soon(getter, value=item)
        else:
            self._items.append(item)

    def _admit_putter(self) -> None:
        if self._putters and (
            self.capacity is None or len(self._items) < self.capacity
        ):
            putter, item = self._putters.pop(0)
            self._items.append(item)
            self._sim.resume_soon(putter, value=None)

    # ------------------------------------------------------------- checkpoint

    def capture(self) -> dict:
        """Snapshot the queue's restorable state (items) plus waiter names."""
        return {
            "name": self.name,
            "capacity": self.capacity,
            "items": list(self._items),
            "getters": [t.name for t in self._getters],
            "putters": [t.name for t, _ in self._putters],
        }

    def restore(self, snapshot: dict) -> None:
        """Restore the stored items (waiters are live tasks; not restored)."""
        self.capacity = snapshot["capacity"]
        self._items = collections.deque(snapshot["items"])

    def _discard_getter(self, task: Task) -> None:
        try:
            self._getters.remove(task)
        except ValueError:
            pass

    def _discard_putter(self, task: Task) -> None:
        self._putters = [(t, i) for t, i in self._putters if t is not task]


class _QueuePut(_WaitEffect):
    def __init__(self, queue: Queue, item: Any) -> None:
        super().__init__()
        self._queue = queue
        self._item = item

    def subscribe(self, sim: Simulator, task: Task) -> None:
        queue = self._queue
        if queue.capacity is None or len(queue._items) < queue.capacity or queue._getters:
            queue._deliver(self._item)
            sim.resume_soon(task, value=None)
            task._cancel_wakeup = None
            return
        queue._putters.append((task, self._item))
        self._park(sim, task, unregister=lambda: queue._discard_putter(task))


class _QueueGet(_WaitEffect):
    def __init__(self, queue: Queue, timeout: Optional[float]) -> None:
        super().__init__()
        self._queue = queue
        self._timeout = timeout

    def subscribe(self, sim: Simulator, task: Task) -> None:
        queue = self._queue
        if queue._items:
            item = queue._items.popleft()
            queue._admit_putter()
            sim.resume_soon(task, value=item)
            task._cancel_wakeup = None
            return
        queue._getters.append(task)
        self._park(
            sim,
            task,
            unregister=lambda: queue._discard_getter(task),
            timeout=self._timeout,
            on_timeout=None,
        )


class Future:
    """A write-once result container; yielding it waits for completion.

    A waiter receives the result, or — when the future completed
    exceptionally — an :class:`ExecutionException` wrapping the original
    cause is thrown into it, matching ``Future.get()`` semantics.
    """

    def __init__(self, sim: Simulator, name: str = "future") -> None:
        self._sim = sim
        self.name = name
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._waiters: list[Task] = []

    @property
    def done(self) -> bool:
        return self._done

    @property
    def exception(self) -> Optional[BaseException]:
        return self._exception

    def set_result(self, value: Any = None) -> None:
        if self._done:
            return
        self._done = True
        self._result = value
        self._wake_all()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            return
        self._done = True
        self._exception = exc
        self._wake_all()

    # Java-flavored alias used by the mini systems.
    complete_exceptionally = set_exception

    def subscribe(self, sim: Simulator, task: Task) -> None:
        if self._done:
            self._schedule_wake(task)
            task._cancel_wakeup = None
            return
        self._waiters.append(task)

        def unregister() -> None:
            try:
                self._waiters.remove(task)
            except ValueError:
                pass

        task._cancel_wakeup = unregister

    def _wake_all(self) -> None:
        waiters, self._waiters = self._waiters, []
        for task in waiters:
            self._schedule_wake(task)

    def _schedule_wake(self, task: Task) -> None:
        # The future is write-once and already done here, so capturing the
        # outcome now (rather than at fire time) is equivalent.
        if self._exception is not None:
            self._sim.resume_soon(task, exc=ExecutionException(self._exception))
        else:
            self._sim.resume_soon(task, value=self._result)

    # ------------------------------------------------------------- checkpoint

    def capture(self) -> dict:
        """Snapshot the future's restorable state plus waiter names."""
        return {
            "name": self.name,
            "done": self._done,
            "result": self._result,
            "exception": self._exception,
            "waiters": [t.name for t in self._waiters],
        }

    def restore(self, snapshot: dict) -> None:
        """Restore completion state (waiters are live tasks; not restored)."""
        self._done = snapshot["done"]
        self._result = snapshot["result"]
        self._exception = snapshot["exception"]


GenFn = Callable[..., Generator[Any, Any, Any]]


class Executor:
    """Thread-pool analog: each submission runs as its own task.

    An unhandled exception inside a submitted job completes the job's
    future exceptionally instead of crashing the process — the executor
    swallows it exactly the way a Java pool does, which is why faults can
    hide until someone waits on the future.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self._sim = sim
        self.name = name
        self._counter = 0

    def submit(self, fn: GenFn, *args: Any, **kwargs: Any) -> Future:
        self._counter += 1
        future = Future(self._sim, name=f"{self.name}-f{self._counter}")
        task_name = f"{self.name}-{self._counter}"

        def runner() -> Generator[Any, Any, Any]:
            try:
                result = yield from fn(*args, **kwargs)
            except GeneratorExit:
                raise
            except BaseException as error:  # noqa: BLE001 - pool boundary
                future.set_exception(error)
            else:
                future.set_result(result)

        self._sim.spawn(task_name, runner())
        return future


class SerialExecutor:
    """Single-threaded executor: jobs run in submission order on one task.

    This is the shape of HBase's WAL ``consumeExecutor``: one long-lived
    worker draining a job queue, so a job that blocks starves every later
    submission — the exact mechanism behind the motivating failure.
    """

    def __init__(self, sim: Simulator, name: str) -> None:
        self._sim = sim
        self.name = name
        self._jobs: Queue = Queue(sim, name=f"{name}-jobs")
        self._counter = 0
        self.worker = sim.spawn(name, self._loop())

    def submit(self, fn: GenFn, *args: Any, **kwargs: Any) -> Future:
        self._counter += 1
        future = Future(self._sim, name=f"{self.name}-f{self._counter}")
        self._jobs.put_nowait((fn, args, kwargs, future))
        return future

    def _loop(self) -> Generator[Any, Any, Any]:
        while True:
            job = yield self._jobs.get()
            if job is None:
                continue
            fn, args, kwargs, future = job
            try:
                result = yield from fn(*args, **kwargs)
            except GeneratorExit:
                raise
            except BaseException as error:  # noqa: BLE001 - pool boundary
                future.set_exception(error)
            else:
                future.set_result(result)
