"""Process-level checkpoint/fork: kill the fault-free prefix of a round.

Every plan the Explorer tries in one round shares a long fault-free
prefix — before the first armed instance fires, the run replays the
probe trace exactly (§5.2.5 single-shot window semantics).  Replaying
that prefix from t=0 for each candidate is the dominant cost on a
single-CPU box, and it is pure waste.

Generators cannot be pickled or deep-copied, so an in-process snapshot
of the scheduler cannot resume tasks (see ``Simulator.capture``).  What
*can* clone a pile of live generator frames, exactly and cheaply, is
``os.fork``.  The scheme:

1. A **holder** process forks off the parent and runs the workload under
   the round's base-only plan, with an :meth:`~repro.injection.fir.FIR.
   set_trigger` armed at request ordinal ``K`` (1-based, from the probe
   trace).  When request ``K`` executes, the holder parks inside the
   trigger — its entire sim state frozen mid-run — and serves fork
   requests off a pipe.
2. For each candidate plan, the holder forks a **grandchild** that swaps
   the candidate plan in (:meth:`~repro.injection.fir.FIR.swap_plan`,
   which preserves prefix state) and simply returns from the trigger:
   the run continues from request ``K`` as if the plan had been active
   all along.  The grandchild pickles its :class:`RunResult` back to the
   parent over a pipe and exits.
3. The parent keeps a small ladder of holders ("rungs") at different
   depths and serves each plan from the deepest rung at or before the
   plan's first possible firing position.

The invariance contract: a fork-served run is byte-identical to a full
replay.  The prefix is shared by construction (deterministic sim, same
plan semantics up to ``K``), and the trigger fires after the request is
counted and traced but before its injection decision, so the grandchild
makes exactly the decisions a full replay would.

Everything degrades gracefully: platforms without ``os.fork``, foreign
workloads/seeds/horizons, recorder-attached runs, and any pipe or child
failure all fall back to inline execution (counted under
``sim.checkpoint.fallbacks``).
"""

from __future__ import annotations

import gc
import hashlib
import os
import pickle
import signal
import statistics
import struct
import time
import warnings
from typing import Optional

from ..injection.fir import FIR, InjectionPlan, TraceEvent
from ..logs.record import Level, LogFile, LogRecord, SourceRef
from ..obs import metrics as obs_metrics
from .cluster import Cluster, RunResult, execute_workload

__all__ = [
    "Checkpoint",
    "CheckpointPool",
    "checkpoint_supported",
    "snapshot_fingerprint",
]

#: Early-verdict counters a grandchild accumulates in its own process
#: (``Cluster.run`` increments them at the cutoff).  The grandchild dies
#: with its metrics, so the ok frame carries the deltas and the parent
#: replays them — otherwise a checkpointed search would report zero
#: cutoffs while truncating runs all along.
_VERDICT_METRICS = (
    "verdict.cutoffs",
    "verdict.virtual_seconds_saved",
    "verdict.events_saved",
)

#: Opening a rung shallower than this saves too little to pay the fork
#: plumbing for; such plans run inline.
MIN_PREFIX_REQUESTS = 8
#: ... and the same in relative terms: a fork shallower than this
#: fraction of the probe trace replays most of the run anyway, so the
#: fixed fork cost (fork + pipe + pickle, ~1-2 ms) eats the saving.
#: With grid rungs the gap replayed above the rung is bounded, so even
#: moderately shallow forks still skip their prefix; the floor only has
#: to keep the fixed cost from dominating.
MIN_PREFIX_FRACTION = 0.15
#: Rungs held live per pool.  Each rung is one parked holder process,
#: and rung depths are quantized to a grid of this many steps across
#: the trace: a plan forks from the grid rung at or just below its fork
#: point, so the replayed gap is at most one grid step (~1/8 of the
#: trace) no matter in which order plans arrive.
MAX_RUNGS = 8
#: Holder processes forked per pool lifetime (rungs are never reopened).
OPEN_BUDGET = 12
#: Pipe failures tolerated before the whole pool stops forking.
MAX_POOL_ERRORS = 2
#: Deep forks (prefix >= half of the trace) timed against a duplicate
#: inline replay before the pool trusts that forking pays on this
#: workload/host; if the median fork loses, the pool retires itself.
#: Only genuinely deep forks count — near the eligibility floor a fork
#: roughly ties inline replay, and a tie there says nothing about the
#: deep forks the pool exists for.
CALIBRATION_RUNS = 2
#: Minimum prefix fraction for a fork to count as a calibration sample.
CALIBRATION_MIN_FRACTION = 0.5


def checkpoint_supported() -> bool:
    """Whether this platform can fork (POSIX; not Windows)."""
    return hasattr(os, "fork")


# ----------------------------------------------------------------- fingerprint


def _canonical(value):
    """Recursively order dicts/sets so ``repr`` is deterministic."""
    if isinstance(value, dict):
        return tuple(
            (key, _canonical(item)) for key, item in sorted(value.items())
        )
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(repr(item) for item in value))
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(item) for item in value)
    if isinstance(value, BaseException):
        return (type(value).__name__, str(value))
    return value


def snapshot_fingerprint(snapshot: dict) -> str:
    """Digest of a :meth:`Cluster.capture` snapshot.

    Two runs with equal fingerprints at the same request ordinal are in
    identical data states; the equivalence tests compare these across
    fork and full-replay executions.
    """
    text = repr(_canonical(snapshot))
    return hashlib.sha256(text.encode()).hexdigest()[:24]


# --------------------------------------------------------------- pipe framing
#
# Messages are pickled blobs behind a 4-byte big-endian length prefix.
# ``os.read``/``os.write`` may move fewer bytes than asked, so both
# directions loop.  A writer never emits a partial frame by policy: the
# blob is fully pickled before the first byte goes out, and error paths
# exit without writing.

_HEADER = struct.Struct("!I")


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = os.read(fd, remaining)
        if not chunk:
            raise EOFError("checkpoint pipe closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _write_frame(fd: int, blob: bytes) -> None:
    _write_all(fd, _HEADER.pack(len(blob)) + blob)


def _write_message(fd: int, message: tuple) -> None:
    _write_frame(fd, pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL))


def _read_message(fd: int) -> tuple:
    (length,) = _HEADER.unpack(_read_exact(fd, _HEADER.size))
    return pickle.loads(_read_exact(fd, length))


def _encode_result(result: RunResult) -> tuple:
    """Flatten a :class:`RunResult` for the response pipe.

    Generic pickling of a result spends most of its time reducing the
    thousands of small ``LogRecord``/``TraceEvent`` dataclass instances
    one by one; flattening them to primitive tuples first makes the
    frame several times cheaper to serialize on the fork critical path.
    The remaining fields are small and ship as-is.
    """
    return (
        [
            (
                record.time,
                record.thread,
                int(record.level),
                record.message,
                None
                if record.source is None
                else (
                    record.source.file,
                    record.source.line,
                    record.source.function,
                ),
            )
            for record in result.log
        ],
        [
            (event.site_id, event.occurrence, event.time, event.log_index)
            for event in result.trace
        ],
        result.injected,
        result.injected_instance,
        result.stuck,
        result.crashed,
        result.state,
        result.end_time,
        result.site_counts,
        result.injection_requests,
        result.decision_seconds,
        result.base_faults_fired,
        result.truncated_at,
    )


def _decode_result(payload: tuple) -> RunResult:
    """Rebuild the :class:`RunResult` flattened by :func:`_encode_result`."""
    (
        records,
        trace,
        injected,
        injected_instance,
        stuck,
        crashed,
        state,
        end_time,
        site_counts,
        injection_requests,
        decision_seconds,
        base_faults_fired,
        truncated_at,
    ) = payload
    return RunResult(
        log=LogFile(
            LogRecord(
                when,
                thread,
                Level(level),
                message,
                None if source is None else SourceRef(*source),
            )
            for when, thread, level, message, source in records
        ),
        trace=[TraceEvent(*event) for event in trace],
        injected=injected,
        injected_instance=injected_instance,
        stuck=stuck,
        crashed=crashed,
        state=state,
        end_time=end_time,
        site_counts=site_counts,
        injection_requests=injection_requests,
        decision_seconds=decision_seconds,
        base_faults_fired=base_faults_fired,
        truncated_at=truncated_at,
    )


def _fork() -> int:
    """``os.fork`` with the multi-threaded-process warning suppressed.

    The parallel engine keeps a ``ProcessPoolExecutor`` management thread
    alive, which makes CPython ≥3.12 warn on every fork.  The forked
    children here never touch thread state — they run the single-threaded
    sim and exit — so the warning is noise for this use.
    """
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return os.fork()


# ------------------------------------------------------------------ processes


def _run_with_trigger(
    workload,
    horizon: float,
    seed: int,
    plan: Optional[InjectionPlan],
    at_request: int,
    trigger,
    monitor_factory=None,
) -> RunResult:
    """``execute_workload`` with a FIR trigger armed before the run.

    With ``monitor_factory``, the run is verdict-monitored — but cutoff
    stays *disabled* until the trigger has returned.  The holder runs
    under the base-only plan, whose empty window would let a
    prefix-latching oracle stop the run before it ever reaches the park
    point; watchpoints keep latching through the prefix, and only the
    grandchild (post plan-swap, where injection accounting gates cutoff)
    may actually stop early.
    """
    cluster = Cluster(seed=seed)
    cluster.fir.set_plan(plan)
    monitor = None
    if monitor_factory is not None:
        monitor = monitor_factory()
        monitor.disable_cutoff()
        monitor.attach(cluster)
        inner_trigger = trigger

        def trigger(fir: FIR) -> None:
            inner_trigger(fir)
            monitor.enable_cutoff()

    cluster.fir.set_trigger(at_request, trigger)
    workload(cluster)
    return cluster.run(horizon, monitor=monitor)


def _holder_main(
    req_r: int,
    resp_w: int,
    workload,
    horizon: float,
    seed: int,
    base_plan: Optional[InjectionPlan],
    at_request: int,
    monitor_factory=None,
) -> None:
    """Body of the holder process; every path ends in ``os._exit``.

    The holder runs the prefix to request ``at_request`` and parks in
    the trigger serving fork requests.  A forked grandchild returns from
    the trigger with the candidate plan swapped in, finishes the run,
    and writes the sole success frame; the holder reports grandchild
    failures (it writes only ``err`` frames, and only after ``waitpid``,
    so the two writers never interleave).
    """
    role = {"fork": False}

    def trigger(fir: FIR) -> None:
        # Park the cyclic collector: a collection in holder or grandchild
        # would walk the whole inherited heap and fault in copy-on-write
        # pages wholesale.  (No gc.collect()/gc.freeze() here — both walk
        # every tracked object, which IS that wholesale copy.)
        gc.disable()
        _write_message(resp_w, ("ready",))
        while True:
            try:
                message = _read_message(req_r)
            except (EOFError, OSError):
                os._exit(0)
            if message[0] == "close":
                os._exit(0)
            if message[0] != "run":
                os._exit(4)
            pid = _fork()
            if pid == 0:
                role["fork"] = True
                fir.swap_plan(InjectionPlan.from_payload(message[1]))
                return  # grandchild: resume the run under the candidate plan
            _, status = os.waitpid(pid, 0)
            if status != 0:
                _write_message(
                    resp_w, ("err", f"fork child exited with status {status}")
                )

    verdict_base = {name: obs_metrics.get(name) for name in _VERDICT_METRICS}
    try:
        result = _run_with_trigger(
            workload, horizon, seed, base_plan, at_request, trigger,
            monitor_factory=monitor_factory,
        )
    except BaseException:
        os._exit(3 if role["fork"] else 4)
    if role["fork"]:
        verdict_deltas = {
            name: obs_metrics.get(name) - verdict_base[name]
            for name in _VERDICT_METRICS
            if obs_metrics.get(name) != verdict_base[name]
        }
        try:
            blob = pickle.dumps(
                ("ok", _encode_result(result), verdict_deltas),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            os._exit(3)
        _write_frame(resp_w, blob)
        os._exit(0)
    # The run finished without reaching the trigger (should not happen
    # for fork points derived from the probe trace); refuse politely.
    _write_message(resp_w, ("ready",))
    while True:
        try:
            message = _read_message(req_r)
        except (EOFError, OSError):
            os._exit(0)
        if message[0] == "close":
            os._exit(0)
        _write_message(resp_w, ("err", "checkpoint trigger never reached"))


class Checkpoint:
    """One parked holder process: the run frozen at request ``at_request``.

    ``run(plan)`` forks a grandchild off the holder that finishes the run
    under ``plan`` and returns its :class:`RunResult`, or ``None`` on any
    failure (after which the checkpoint is closed and unusable).
    """

    def __init__(
        self,
        workload,
        horizon: float,
        seed: int,
        base_plan: Optional[InjectionPlan],
        at_request: int,
        monitor_factory=None,
    ) -> None:
        self.at_request = at_request
        self.closed = False
        req_r, req_w = os.pipe()
        resp_r, resp_w = os.pipe()
        pid = _fork()
        if pid == 0:
            os.close(req_w)
            os.close(resp_r)
            try:
                _holder_main(
                    req_r, resp_w, workload, horizon, seed, base_plan,
                    at_request, monitor_factory=monitor_factory,
                )
            finally:  # pragma: no cover - _holder_main always exits
                os._exit(4)
        os.close(req_r)
        os.close(resp_w)
        self._pid = pid
        self._req_w = req_w
        self._resp_r = resp_r
        # Wait for the holder to finish the prefix and park in the trigger,
        # so open cost stays in open() and run() times pure fork+suffix —
        # the pool's calibration depends on that separation.
        try:
            ready = _read_message(self._resp_r)
        except (OSError, EOFError, pickle.PickleError):
            self.close()
            return
        if not isinstance(ready, tuple) or ready[0] != "ready":
            self.close()

    def run(self, plan: InjectionPlan) -> Optional[RunResult]:
        """Fork one candidate run off the parked prefix."""
        if self.closed:
            return None
        try:
            _write_message(self._req_w, ("run", plan.to_payload()))
            response = _read_message(self._resp_r)
        except (OSError, EOFError, pickle.PickleError):
            self.close()
            return None
        if not isinstance(response, tuple) or response[0] != "ok":
            self.close()
            return None
        try:
            result = _decode_result(response[1])
        except (TypeError, ValueError):
            self.close()
            return None
        # Replay the grandchild's early-verdict counters here: they were
        # incremented in a process that has already exited.
        if len(response) > 2:
            for name in _VERDICT_METRICS:
                delta = response[2].get(name, 0.0)
                if delta:
                    obs_metrics.increment(name, delta)
        return result

    def close(self) -> None:
        """Tear the holder down without waiting for it to finish."""
        if self.closed:
            return
        self.closed = True
        for fd in (self._req_w, self._resp_r):
            try:
                os.close(fd)
            except OSError:
                pass
        try:
            os.kill(self._pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass
        try:
            os.waitpid(self._pid, 0)
        except (OSError, ChildProcessError):
            pass


# ----------------------------------------------------------------------- pool


class CheckpointPool:
    """A ladder of checkpoints for one (workload, horizon, seed) context.

    Fork points come from the probe trace: a plan's earliest possible
    firing position is the minimum probe-trace position over its armed
    ``(site, occurrence)`` pairs — pairs absent from the probe cannot
    fire before the run diverges, and the run only diverges at the first
    fire.  The pool keeps up to :data:`MAX_RUNGS` holders at distinct
    depths and serves each plan from the deepest rung at or before its
    firing position, opening deeper rungs while budget lasts.

    ``runner`` matches the executor contract of
    :func:`repro.cache.runcache.cached_execute`, so checkpointing
    composes *under* the cache: same keys, same stored results, same
    outcomes — a fork-served miss is indistinguishable from an inline
    miss.
    """

    def __init__(
        self,
        workload,
        horizon: float,
        seed: int,
        probe_trace: list[TraceEvent],
        base_faults=(),
        monitor_factory=None,
    ) -> None:
        self.workload = workload
        self.horizon = horizon
        self.seed = seed
        #: Early-verdict monitor factory inherited by every holder (and
        #: so, via fork, by every grandchild).  When set, fork-served
        #: runs may come back truncated — callers opt in by constructing
        #: the pool with the same factory they pass to the cache.
        self._monitor_factory = monitor_factory
        self._base_faults = list(base_faults)
        self._base_key = tuple(
            (inst.site_id, inst.exception, inst.occurrence)
            for inst in self._base_faults
        )
        self._base_plan = InjectionPlan.of([], always=self._base_faults)
        self._order: dict[tuple[str, int], int] = {}
        for position, event in enumerate(probe_trace, start=1):
            self._order.setdefault((event.site_id, event.occurrence), position)
        self._total_requests = len(probe_trace)
        self._rungs: dict[int, Checkpoint] = {}
        self._opens_left = OPEN_BUDGET
        self._errors = 0
        #: ``(fork_seconds, inline_seconds)`` pairs for deep forks; once
        #: :data:`CALIBRATION_RUNS` are in, the pool keeps forking only
        #: if the fork path actually wins on this workload and host.
        self._calibration: list[tuple[float, float]] = []
        self.broken = not checkpoint_supported() or self._total_requests == 0

    # ------------------------------------------------------------- fork points

    def fork_point(self, plan: Optional[InjectionPlan]) -> Optional[int]:
        """Latest safe fork request for ``plan``, or ``None`` if ineligible.

        Plans whose armed pairs never occur in the probe trace can never
        fire, so the deepest point of the trace is safe; plans carrying
        different base faults than the pool's probe are foreign and get
        ``None``.
        """
        if plan is None:
            return None
        always_key = tuple(
            (inst.site_id, inst.exception, inst.occurrence)
            for inst in plan.always
        )
        if always_key != self._base_key:
            return None
        first = self._total_requests
        for instance in plan.instances:
            position = self._order.get((instance.site_id, instance.occurrence))
            if position is not None and position < first:
                first = position
        return first

    # ----------------------------------------------------------------- running

    def runner(
        self,
        workload,
        horizon: float,
        seed: int = 0,
        plan: Optional[InjectionPlan] = None,
        tracing: bool = True,
        recorder=None,
        monitor=None,
    ) -> RunResult:
        """Drop-in for ``execute_workload``; forks when safe, else inline.

        A grandchild carries the *pool's* monitor (inherited through the
        holder fork with its prefix latches intact), so a caller-supplied
        ``monitor`` is only used on the inline path.  A monitored pool
        never serves an unmonitored call from a fork: the grandchild
        could truncate, and this caller expects a full run.
        """
        if (
            not self.broken
            and recorder is None
            and tracing
            and workload is self.workload
            and horizon == self.horizon
            and seed == self.seed
            and plan is not None
            and plan.instances
            and (self._monitor_factory is None or monitor is not None)
        ):
            result = self._run_forked(plan)
            if result is not None:
                return result
            obs_metrics.increment("sim.checkpoint.fallbacks")
        return execute_workload(
            workload,
            horizon=horizon,
            seed=seed,
            plan=plan,
            tracing=tracing,
            recorder=recorder,
            monitor=monitor,
        )

    def _run_forked(self, plan: InjectionPlan) -> Optional[RunResult]:
        fork_point = self.fork_point(plan)
        if fork_point is None or fork_point < max(
            MIN_PREFIX_REQUESTS, self._total_requests * MIN_PREFIX_FRACTION
        ):
            return None
        rung = self._pick_rung(fork_point)
        if rung is None:
            return None
        started = time.perf_counter()
        result = rung.run(plan)
        fork_seconds = time.perf_counter() - started
        obs_metrics.increment("sim.checkpoint.fork_seconds", fork_seconds)
        if result is None:
            self._rungs.pop(rung.at_request, None)
            self._errors += 1
            obs_metrics.increment("sim.checkpoint.errors")
            if self._errors >= MAX_POOL_ERRORS:
                self.broken = True
                self.close()
            return None
        obs_metrics.increment("sim.checkpoint.forks")
        obs_metrics.increment(
            "sim.checkpoint.requests_saved", rung.at_request - 1
        )
        self._calibrate(plan, fork_point, fork_seconds)
        return result

    def _calibrate(
        self, plan: InjectionPlan, fork_point: int, fork_seconds: float
    ) -> None:
        """Retire the pool when forking loses to plain replay.

        Mini systems can be so cheap to replay that fork-and-pickle
        overhead outweighs the skipped prefix.  The first few *deep*
        forks (prefix >= :data:`CALIBRATION_MIN_FRACTION` of the trace —
        a shallow fork losing proves nothing) each pay for one duplicate
        inline replay of the same plan; deterministic execution makes
        the duplicate free of side effects, and its wall clock is the
        ground truth.  If the median deep fork is not faster, the pool
        closes and every later run falls back inline (counted under
        ``sim.checkpoint.retired``).
        """
        if len(self._calibration) >= CALIBRATION_RUNS:
            return
        if fork_point < self._total_requests * CALIBRATION_MIN_FRACTION:
            return
        started = time.perf_counter()
        # Arm the same monitoring the fork path enjoys, so the timing
        # comparison is like against like (a monitored fork that cut the
        # tail must not be judged against an unmonitored full replay).
        execute_workload(
            self.workload,
            horizon=self.horizon,
            seed=self.seed,
            plan=plan,
            monitor=None
            if self._monitor_factory is None
            else self._monitor_factory(),
        )
        inline_seconds = time.perf_counter() - started
        obs_metrics.increment(
            "sim.checkpoint.calibration_seconds", inline_seconds
        )
        self._calibration.append((fork_seconds, inline_seconds))
        if len(self._calibration) < CALIBRATION_RUNS:
            return
        forked = statistics.median(f for f, _ in self._calibration)
        inline = statistics.median(i for _, i in self._calibration)
        if forked >= inline:
            self.broken = True
            obs_metrics.increment("sim.checkpoint.retired")
            self.close()

    def _pick_rung(self, fork_point: int) -> Optional[Checkpoint]:
        """Deepest usable rung for ``fork_point``, opening one if worth it.

        Rung depths sit on a fixed grid (:data:`MAX_RUNGS` steps across
        the trace).  Serving a plan from the grid rung at or just below
        its fork point bounds the replayed gap to one grid step; opening
        at the plan's exact depth instead would let an early shallow
        rung capture every later, deeper plan and waste most of the
        prefix it could have skipped.
        """
        step = max(1, self._total_requests // MAX_RUNGS)
        target = max((fork_point // step) * step, MIN_PREFIX_REQUESTS)
        best: Optional[Checkpoint] = None
        for depth, rung in self._rungs.items():
            if depth <= fork_point and (best is None or depth > best.at_request):
                best = rung
        if best is not None and best.at_request >= target:
            return best
        if self._opens_left <= 0 or len(self._rungs) >= MAX_RUNGS:
            return best
        self._opens_left -= 1
        obs_metrics.increment("sim.checkpoint.opens")
        started = time.perf_counter()
        rung = Checkpoint(
            self.workload, self.horizon, self.seed, self._base_plan, target,
            monitor_factory=self._monitor_factory,
        )
        obs_metrics.increment(
            "sim.checkpoint.open_seconds", time.perf_counter() - started
        )
        self._rungs[target] = rung
        return rung

    def close(self) -> None:
        """Kill every holder; the pool keeps falling back inline after."""
        rungs, self._rungs = list(self._rungs.values()), {}
        for rung in rungs:
            rung.close()

    def __enter__(self) -> "CheckpointPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
