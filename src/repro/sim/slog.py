"""In-simulation logging.

Mini systems log through :class:`SimLogger`, which renders ``%s``-style
templates (the same convention the static analyzer extracts as
:class:`~repro.logs.sanitize.LogTemplate`) and attributes each record to
the currently running task — that attribution is what makes the per-thread
diff of §5.1.1 meaningful.

``SimLogger.exception`` appends a Java-style stack trace rendered from the
Python traceback, so failure logs contain the material the
stacktrace-injector baseline (§8.4) parses.
"""

from __future__ import annotations

import sys
import traceback
from typing import Any, Optional

from ..logs.record import Level, LogFile, LogRecord, SourceRef
from .scheduler import Simulator


class LogCollector:
    """Accumulates the records of one run."""

    def __init__(self) -> None:
        self.log = LogFile()
        #: Emission watchpoints (e.g. the early-verdict monitor's log
        #: leaves); empty on the common path so ``append`` stays cheap.
        self._listeners: list = []

    def __len__(self) -> int:
        return len(self.log)

    def add_listener(self, listener) -> None:
        """Call ``listener(record)`` on every appended record."""
        self._listeners.append(listener)

    def append(self, record: LogRecord) -> None:
        self.log.append(record)
        if self._listeners:
            for listener in self._listeners:
                listener(record)

    # ------------------------------------------------------------- checkpoint

    def capture(self) -> dict:
        """Snapshot the records emitted so far (records are immutable)."""
        return {"records": list(self.log)}

    def restore(self, snapshot: dict) -> None:
        log = LogFile()
        for record in snapshot["records"]:
            log.append(record)
        self.log = log


def render_stack_trace(exc: BaseException, limit: int = 12) -> str:
    """Render an exception's traceback in Java log style.

    Frames from the simulator internals are dropped; only system-code
    frames appear, which is what a JVM stack trace would show.
    """
    lines = [f"{type(exc).__name__}: {exc}"]
    tb_frames = traceback.extract_tb(exc.__traceback__)
    for frame in tb_frames[-limit:]:
        filename = frame.filename
        if "/repro/sim/" in filename or "/repro/injection/" in filename:
            continue
        lines.append(f"\tat {frame.name}({filename.rsplit('/', 1)[-1]}:{frame.lineno})")
    cause = getattr(exc, "cause", None)
    if isinstance(cause, BaseException):
        lines.append(f"Caused by: {type(cause).__name__}: {cause}")
    return "\n".join(lines)


class SimLogger:
    """A named logger bound to the simulator clock and current task."""

    def __init__(
        self,
        sim: Simulator,
        collector: LogCollector,
        default_thread: str = "main",
    ) -> None:
        self._sim = sim
        self._collector = collector
        self._default_thread = default_thread

    def _thread_name(self) -> str:
        task = self._sim.current_task
        return task.name if task is not None else self._default_thread

    def _emit(self, level: Level, template: str, args: tuple[Any, ...]) -> None:
        message = template % args if args else template
        frame = sys._getframe(2)
        source = SourceRef(
            file=frame.f_code.co_filename,
            line=frame.f_lineno,
            function=frame.f_code.co_name,
        )
        self._collector.append(
            LogRecord(
                time=self._sim.now,
                thread=self._thread_name(),
                level=level,
                message=message,
                source=source,
            )
        )

    def debug(self, template: str, *args: Any) -> None:
        self._emit(Level.DEBUG, template, args)

    def info(self, template: str, *args: Any) -> None:
        self._emit(Level.INFO, template, args)

    def warn(self, template: str, *args: Any) -> None:
        self._emit(Level.WARN, template, args)

    def error(self, template: str, *args: Any) -> None:
        self._emit(Level.ERROR, template, args)

    def fatal(self, template: str, *args: Any) -> None:
        self._emit(Level.FATAL, template, args)

    def exception(
        self,
        template: str,
        *args: Any,
        exc: Optional[BaseException] = None,
        level: Level = Level.ERROR,
    ) -> None:
        """Log a message followed by the exception's stack trace."""
        message = template % args if args else template
        if exc is not None:
            message = message + "\n" + render_stack_trace(exc)
        self._emit(level, "%s", (message,))
