"""Simulated message network.

Nodes register named inboxes; sends are delivered after a small fixed
latency, preserving per-link FIFO order.  Partitions and unregistered
destinations fail sends with real (non-injected) exceptions so that the
mini systems exercise their error handling even without the FIR.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Optional

from .errors import ConnectException, SocketException
from .scheduler import Simulator
from .sync import Queue

#: Fixed one-way delivery latency in virtual seconds.
DEFAULT_LATENCY = 0.001


@dataclasses.dataclass(frozen=True)
class Message:
    """A network datagram."""

    src: str
    dst: str
    kind: str
    payload: Any = None
    reply_to: Optional[str] = None

    def __str__(self) -> str:
        return f"{self.kind} {self.src}->{self.dst}"


class Network:
    def __init__(self, sim: Simulator, latency: float = DEFAULT_LATENCY) -> None:
        self._sim = sim
        self._latency = latency
        self._inboxes: dict[str, Queue] = {}
        self._partitioned: set[tuple[str, str]] = set()
        self.sent_count = 0
        #: Messages that actually reached an inbox after the link latency
        #: (a send counts as delivered only when its delayed callback ran).
        self.delivered_count = 0

    def register(self, name: str) -> Queue:
        """Create (or return) the inbox for endpoint ``name``."""
        if name not in self._inboxes:
            self._inboxes[name] = Queue(self._sim, name=f"inbox:{name}")
        return self._inboxes[name]

    def unregister(self, name: str) -> None:
        self._inboxes.pop(name, None)

    def inbox(self, name: str) -> Queue:
        try:
            return self._inboxes[name]
        except KeyError:
            raise ConnectException(f"no route to {name}") from None

    def partition(self, src: str, dst: str) -> None:
        self._partitioned.add((src, dst))

    def heal(self, src: str, dst: str) -> None:
        self._partitioned.discard((src, dst))

    def reachable(self, src: str, dst: str) -> bool:
        return dst in self._inboxes and (src, dst) not in self._partitioned

    def send(self, message: Message) -> None:
        """Deliver after the link latency; raises when the link is down."""
        if (message.src, message.dst) in self._partitioned:
            raise SocketException(
                f"connection from {message.src} to {message.dst} lost"
            )
        inbox = self._inboxes.get(message.dst)
        if inbox is None:
            raise ConnectException(f"connection refused by {message.dst}")
        self.sent_count += 1

        def deliver() -> None:
            self.delivered_count += 1
            inbox.put_nowait(message)

        self._sim.call_at(self._sim.now + self._latency, deliver)

    # ------------------------------------------------------------- checkpoint

    def capture(self) -> dict:
        """Snapshot the network's restorable state.

        In-flight messages (scheduled ``deliver`` callbacks) belong to the
        scheduler heap and are not part of this snapshot; inbox contents
        are captured through each inbox queue.
        """
        return {
            "latency": self._latency,
            "partitioned": set(self._partitioned),
            "sent_count": self.sent_count,
            "delivered_count": self.delivered_count,
            "inboxes": {
                name: queue.capture() for name, queue in self._inboxes.items()
            },
        }

    def restore(self, snapshot: dict) -> None:
        """Restore partitions, counters, and queued inbox items.

        Endpoints registered after the snapshot are dropped so a
        capture/restore round-trip is exact.
        """
        self._latency = snapshot["latency"]
        self._partitioned = set(snapshot["partitioned"])
        self.sent_count = snapshot["sent_count"]
        self.delivered_count = snapshot["delivered_count"]
        for name in list(self._inboxes):
            if name not in snapshot["inboxes"]:
                del self._inboxes[name]
        for name, queue_snapshot in snapshot["inboxes"].items():
            inbox = self._inboxes.get(name)
            if inbox is not None:
                inbox.restore(queue_snapshot)
