"""Simulated disk.

A flat path → bytes store with append support.  The real fault surface is
the :mod:`repro.sim.env` boundary in front of this class; the disk itself
is intentionally reliable so that injected faults are the only faults.
"""

from __future__ import annotations

from .errors import FileNotFoundException


class Disk:
    """Per-cluster shared storage (each system namespaces its own paths)."""

    def __init__(self) -> None:
        self._files: dict[str, bytes] = {}

    def write(self, path: str, data: bytes) -> None:
        self._files[path] = bytes(data)

    def append(self, path: str, data: bytes) -> None:
        self._files[path] = self._files.get(path, b"") + bytes(data)

    def read(self, path: str) -> bytes:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundException(path) from None

    def exists(self, path: str) -> bool:
        return path in self._files

    def delete(self, path: str) -> None:
        self._files.pop(path, None)

    def listdir(self, prefix: str) -> list[str]:
        return sorted(path for path in self._files if path.startswith(prefix))

    def size(self, path: str) -> int:
        return len(self.read(path))

    def truncate(self, path: str, length: int) -> None:
        self._files[path] = self.read(path)[:length]

    def snapshot(self) -> dict[str, bytes]:
        """A copy of the store; used by oracles checking external state."""
        return dict(self._files)

    # ------------------------------------------------------------- checkpoint

    def capture(self) -> dict:
        """Snapshot the full store (bytes values are immutable)."""
        return {"files": dict(self._files)}

    def restore(self, snapshot: dict) -> None:
        self._files = dict(snapshot["files"])
