"""Deterministic discrete-event scheduler with generator-based tasks.

The simulator is the substrate under every mini distributed system.  A
"thread" is a Python generator; it blocks by yielding *effects* (sleeps,
condition waits, queue operations, futures) that the scheduler interprets.
Virtual time only advances when every runnable task has run, so a run is a
pure function of (workload, seed, injection plan) — the determinism that
lets ANDURIL's reproduction scripts replay a failure exactly.

Hang symptoms matter to the paper (stuck WAL rollers, blocked repairs), so
the scheduler records which tasks are still blocked when the run ends and
can capture a virtual stack (the ``yield from`` chain) for each, which
oracles match the way a developer matches a jstack dump.
"""

from __future__ import annotations

import dataclasses
import enum
import heapq
import random
import traceback
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import InterruptedException

TaskGen = Generator[Any, Any, Any]


class TaskState(enum.Enum):
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"
    FAILED = "failed"
    KILLED = "killed"


@dataclasses.dataclass(frozen=True, slots=True)
class StackFrame:
    """One frame of a task's virtual stack."""

    file: str
    line: int
    function: str

    def __str__(self) -> str:
        return f"{self.function} ({self.file}:{self.line})"


class Sleep:
    """Effect: suspend the task for ``delay`` virtual seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError("sleep delay must be non-negative")
        self.delay = delay

    def subscribe(self, sim: "Simulator", task: "Task") -> None:
        sim.resume_at(sim.now + self.delay, task)


class Task:
    """A named simulated thread wrapping a generator."""

    __slots__ = (
        "name",
        "gen",
        "state",
        "result",
        "error",
        "error_traceback",
        "waiting_on",
        "_cancel_wakeup",
        "_watchers",
    )

    def __init__(self, name: str, gen: TaskGen) -> None:
        self.name = name
        self.gen = gen
        self.state = TaskState.READY
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self.error_traceback: str = ""
        #: What the task is currently blocked on (effect object), if any.
        self.waiting_on: Any = None
        #: Set while blocked; calling it revokes the pending wakeup (used by
        #: interrupt and by timeout races).
        self._cancel_wakeup: Optional[Callable[[], None]] = None
        #: Callbacks to run when the task finishes (used by join()).
        self._watchers: list[Callable[["Task"], None]] = []

    def __repr__(self) -> str:
        return f"<Task {self.name} {self.state.value}>"

    @property
    def alive(self) -> bool:
        return self.state in (TaskState.READY, TaskState.RUNNING, TaskState.BLOCKED)

    def virtual_stack(self) -> list[StackFrame]:
        """The task's current ``yield from`` chain, outermost first."""
        frames: list[StackFrame] = []
        gen = self.gen
        while gen is not None:
            frame = getattr(gen, "gi_frame", None)
            if frame is not None:
                frames.append(
                    StackFrame(
                        file=frame.f_code.co_filename,
                        line=frame.f_lineno,
                        function=frame.f_code.co_name,
                    )
                )
            gen = getattr(gen, "gi_yieldfrom", None)
        return frames

    def stack_functions(self) -> list[str]:
        return [frame.function for frame in self.virtual_stack()]

    def blocked_in(self, function: str) -> bool:
        """Whether the task is blocked with ``function`` on its stack."""
        return self.state is TaskState.BLOCKED and function in self.stack_functions()


class Join:
    """Effect: wait for another task to finish; yields its result."""

    __slots__ = ("task",)

    def __init__(self, task: Task) -> None:
        self.task = task

    def subscribe(self, sim: "Simulator", waiter: Task) -> None:
        if not self.task.alive:
            # The task already finished, so its result is final.
            sim.resume_soon(waiter, value=self.task.result)
            return

        def on_done(done: Task) -> None:
            sim._resume(waiter, value=done.result)

        self.task._watchers.append(on_done)


#: Heap-entry sentinel marking a task wakeup scheduled by ``resume_at``.
#: The run loop dispatches these straight into ``Simulator._resume``
#: instead of through a per-wakeup closure — wakeups are by far the most
#: common event, and the closure allocations dominated the hot loop.
_RESUME: Any = object()


class Simulator:
    """Deterministic event loop over virtual time."""

    def __init__(self, seed: int = 0) -> None:
        self.now = 0.0
        self.random = random.Random(seed)
        self.current_task: Optional[Task] = None
        self.tasks: list[Task] = []
        #: Scheduler events popped off the heap (a run-level counter the
        #: ``repro.obs`` layer reports; deterministic per ``(seed, plan)``).
        self.events_executed = 0
        #: Entries are 6-slot lists ``[when, seq, fn, task, value, exc]``.
        #: ``fn`` is ``None`` for a cancelled entry (cancellation mutates
        #: the entry in place instead of wrapping ``fn`` in a guard
        #: closure) and ``_RESUME`` for a task wakeup.  ``seq`` is unique,
        #: so heap comparisons never reach the non-orderable slots.
        self._heap: list[list] = []
        self._seq = 0
        self._crash_handlers: list[Callable[[Task], None]] = []

    # ------------------------------------------------------------------ events

    def call_at(self, when: float, fn: Callable[[], None]) -> Callable[[], None]:
        """Schedule ``fn`` at virtual time ``when``; returns a canceller."""
        if when < self.now:
            when = self.now
        self._seq += 1
        entry = [when, self._seq, fn, None, None, None]
        heapq.heappush(self._heap, entry)

        def cancel() -> None:
            entry[2] = None

        return cancel

    def call_soon(self, fn: Callable[[], None]) -> Callable[[], None]:
        return self.call_at(self.now, fn)

    def resume_at(
        self,
        when: float,
        task: Task,
        value: Any = None,
        exc: Optional[BaseException] = None,
    ) -> Callable[[], None]:
        """Schedule ``_resume(task, value, exc)`` without a closure."""
        if when < self.now:
            when = self.now
        self._seq += 1
        entry = [when, self._seq, _RESUME, task, value, exc]
        heapq.heappush(self._heap, entry)

        def cancel() -> None:
            entry[2] = None

        return cancel

    def resume_soon(
        self,
        task: Task,
        value: Any = None,
        exc: Optional[BaseException] = None,
    ) -> Callable[[], None]:
        return self.resume_at(self.now, task, value, exc)

    # ------------------------------------------------------------------- tasks

    def spawn(self, name: str, gen: TaskGen) -> Task:
        """Register a generator as a named task and schedule its first step."""
        if not hasattr(gen, "send"):
            raise TypeError(f"spawn() expects a generator, got {type(gen).__name__}")
        task = Task(name, gen)
        self.tasks.append(task)
        self.call_soon(lambda: self._step(task, value=None, first=True))
        return task

    def on_task_crash(self, handler: Callable[[Task], None]) -> None:
        """Register a handler invoked when a task dies of an unhandled error."""
        self._crash_handlers.append(handler)

    def interrupt(self, task: Task) -> None:
        """Throw :class:`InterruptedException` into a blocked task."""
        if task.state is not TaskState.BLOCKED:
            return
        self._resume(task, exc=InterruptedException(f"{task.name} interrupted"))

    def kill(self, task: Task) -> None:
        """Terminate a task without running its handlers (crash analog)."""
        if not task.alive:
            return
        if task._cancel_wakeup is not None:
            task._cancel_wakeup()
            task._cancel_wakeup = None
        task.state = TaskState.KILLED
        task.gen.close()
        self._notify_watchers(task)

    # -------------------------------------------------------------------- run

    def run(self, until: float, monitor=None) -> bool:
        """Run events until the queue drains or virtual ``until`` is reached.

        ``monitor`` (a :class:`repro.core.verdict.VerdictMonitor`) is
        polled after each dispatched event; when it reports the verdict
        decided, the loop exits *without* advancing ``now`` to ``until``
        and returns ``True``.  The unmonitored path is a separate loop so
        the common case pays nothing for the hook.
        """
        heap = self._heap
        pop = heapq.heappop
        if monitor is None:
            while heap:
                when = heap[0][0]
                if when > until:
                    break
                entry = pop(heap)
                if when > self.now:
                    self.now = when
                # Cancelled entries still count: the pre-rewrite loop executed
                # them as guarded no-ops, and ``events_executed`` feeds the
                # deterministic run signature.
                self.events_executed += 1
                fn = entry[2]
                if fn is None:
                    continue
                if fn is _RESUME:
                    self._resume(entry[3], value=entry[4], exc=entry[5])
                else:
                    fn()
            self.now = max(self.now, until)
            return False
        should_stop = monitor.should_stop
        while heap:
            when = heap[0][0]
            if when > until:
                break
            entry = pop(heap)
            if when > self.now:
                self.now = when
            self.events_executed += 1
            fn = entry[2]
            if fn is None:
                continue
            if fn is _RESUME:
                self._resume(entry[3], value=entry[4], exc=entry[5])
            else:
                fn()
            if should_stop():
                return True
        self.now = max(self.now, until)
        return False

    # ------------------------------------------------------------- checkpoint

    def capture(self) -> dict:
        """Snapshot the scheduler's restorable scalar state.

        Tasks and pending heap entries wrap live generators, which cannot
        be serialized or rebuilt in-process — process-level forking (see
        :mod:`repro.sim.checkpoint`) is what snapshots those.  This
        captures everything else, plus a digest of the pending schedule
        for fingerprinting.
        """
        return {
            "now": self.now,
            "seq": self._seq,
            "events_executed": self.events_executed,
            "rng_state": self.random.getstate(),
            "task_states": [(task.name, task.state.value) for task in self.tasks],
            "pending": [(entry[0], entry[1]) for entry in self._heap],
        }

    def restore(self, snapshot: dict) -> None:
        """Restore the scalar state captured by :meth:`capture`.

        Does not touch tasks or the event heap (see :meth:`capture`).
        """
        self.now = snapshot["now"]
        self._seq = snapshot["seq"]
        self.events_executed = snapshot["events_executed"]
        self.random.setstate(snapshot["rng_state"])

    def blocked_tasks(self) -> list[Task]:
        return [task for task in self.tasks if task.state is TaskState.BLOCKED]

    def failed_tasks(self) -> list[Task]:
        return [task for task in self.tasks if task.state is TaskState.FAILED]

    # --------------------------------------------------------------- internals

    def _resume(
        self,
        task: Task,
        value: Any = None,
        exc: Optional[BaseException] = None,
    ) -> None:
        """Wake a blocked task with a value or an exception."""
        if task.state is not TaskState.BLOCKED:
            return  # raced with another wakeup (e.g. timeout vs signal)
        if task._cancel_wakeup is not None:
            task._cancel_wakeup()
            task._cancel_wakeup = None
        task.waiting_on = None
        task.state = TaskState.READY
        self._step(task, value=value, exc=exc)

    def _step(
        self,
        task: Task,
        value: Any = None,
        exc: Optional[BaseException] = None,
        first: bool = False,
    ) -> None:
        """Advance the task's generator by one yield."""
        if task.state is not TaskState.READY:
            return  # killed or already resumed through another path
        previous = self.current_task
        self.current_task = task
        task.state = TaskState.RUNNING
        try:
            if exc is not None:
                effect = task.gen.throw(exc)
            else:
                effect = task.gen.send(value)
        except StopIteration as stop:
            task.state = TaskState.DONE
            task.result = stop.value
            self._notify_watchers(task)
            return
        except BaseException as error:  # noqa: BLE001 - task crash boundary
            task.state = TaskState.FAILED
            task.error = error
            task.error_traceback = traceback.format_exc()
            for handler in self._crash_handlers:
                handler(task)
            self._notify_watchers(task)
            return
        finally:
            self.current_task = previous

        task.state = TaskState.BLOCKED
        task.waiting_on = effect
        subscribe = getattr(effect, "subscribe", None)
        if subscribe is None:
            task.state = TaskState.FAILED
            task.error = TypeError(f"task {task.name} yielded {effect!r}")
            self._notify_watchers(task)
            return
        subscribe(self, task)

    def _notify_watchers(self, task: Task) -> None:
        watchers, task._watchers = task._watchers, []
        for watcher in watchers:
            watcher(task)


def stuck_report(tasks: Iterable[Task]) -> str:
    """Human-readable report of blocked tasks (a jstack analog)."""
    lines = []
    for task in tasks:
        lines.append(f'Thread "{task.name}" BLOCKED')
        for frame in task.virtual_stack():
            lines.append(f"    at {frame}")
    return "\n".join(lines)
