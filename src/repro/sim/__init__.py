"""Deterministic distributed-system simulator.

A ``Cluster`` bundles a discrete-event scheduler (virtual time,
generator-based tasks), a message network, a disk, a logger, and the
fault-injection runtime.  Mini systems are written against the cluster's
primitives; all of their external I/O goes through :class:`repro.sim.env.Env`,
whose call sites are the fault space ANDURIL searches.
"""

from .checkpoint import (
    Checkpoint,
    CheckpointPool,
    checkpoint_supported,
    snapshot_fingerprint,
)
from .cluster import Cluster, RunResult, TaskSummary, execute_workload
from .env import ENV_OPS, Env
from .errors import (
    ConnectException,
    EOFException,
    ExecutionException,
    FileNotFoundException,
    IllegalStateException,
    InterruptedException,
    IOException,
    RuntimeException,
    SimException,
    SocketException,
    TimeoutIOException,
    exception_from_name,
    is_subtype,
)
from .network import Message, Network
from .scheduler import Simulator, Sleep, Task, TaskState, Join, stuck_report
from .slog import LogCollector, SimLogger, render_stack_trace
from .storage import Disk
from .sync import Condition, Executor, Future, Lock, Queue, SerialExecutor

__all__ = [
    "Checkpoint",
    "CheckpointPool",
    "Cluster",
    "Condition",
    "ConnectException",
    "Disk",
    "ENV_OPS",
    "EOFException",
    "Env",
    "ExecutionException",
    "Executor",
    "FileNotFoundException",
    "Future",
    "IOException",
    "IllegalStateException",
    "InterruptedException",
    "Join",
    "LogCollector",
    "Lock",
    "Message",
    "Network",
    "Queue",
    "RunResult",
    "RuntimeException",
    "SerialExecutor",
    "SimException",
    "SimLogger",
    "Simulator",
    "Sleep",
    "SocketException",
    "Task",
    "TaskState",
    "TaskSummary",
    "TimeoutIOException",
    "checkpoint_supported",
    "execute_workload",
    "snapshot_fingerprint",
    "exception_from_name",
    "is_subtype",
    "render_stack_trace",
    "stuck_report",
]
