"""Exception hierarchy for simulated systems.

Faults in the paper's targets surface as Java exceptions (IOException and
friends).  The mini systems raise these analogs; the FIR injects them at
environment-boundary fault sites.  Names deliberately mirror the Java ones
so the failure catalog reads like the paper's appendix (Table 5).
"""

from __future__ import annotations


class SimException(Exception):
    """Base class for all simulated-system exceptions."""


class IOException(SimException):
    """Generic I/O fault (disk or network)."""


class SocketException(IOException):
    """Network socket fault."""


class ConnectException(SocketException):
    """Connection establishment fault."""


class TimeoutIOException(IOException):
    """An I/O wait exceeded its deadline."""


class FileNotFoundException(IOException):
    """A file was missing or unreadable."""


class EOFException(IOException):
    """Unexpected end of stream (truncated file or connection)."""


class InterruptedException(SimException):
    """A blocked task was interrupted."""


class ExecutionException(SimException):
    """A future completed exceptionally; ``cause`` is the original fault."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(f"execution failed: {type(cause).__name__}: {cause}")
        self.cause = cause


class IllegalStateException(SimException):
    """The component reached a state its protocol forbids."""


class RuntimeException(SimException):
    """Unchecked failure (analog of java.lang.RuntimeException)."""


#: Registry used by injection plans, which name exception types as strings.
EXCEPTION_TYPES: dict[str, type[SimException]] = {
    cls.__name__: cls
    for cls in (
        SimException,
        IOException,
        SocketException,
        ConnectException,
        TimeoutIOException,
        FileNotFoundException,
        EOFException,
        InterruptedException,
        IllegalStateException,
        RuntimeException,
    )
}


def exception_from_name(name: str, message: str = "injected fault") -> SimException:
    """Instantiate a registered exception type by name."""
    try:
        cls = EXCEPTION_TYPES[name]
    except KeyError:
        raise ValueError(f"unknown exception type: {name!r}") from None
    return cls(message)


def is_subtype(name: str, of: str) -> bool:
    """Whether exception type ``name`` is a subtype of type ``of``.

    Used by the static exception analysis to decide which handlers catch
    which fault sites.
    """
    try:
        return issubclass(EXCEPTION_TYPES[name], EXCEPTION_TYPES[of])
    except KeyError:
        return name == of
