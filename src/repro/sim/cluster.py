"""Cluster harness: wires simulator, network, disk, logger, and FIR.

One :class:`Cluster` is one *run*: a fresh simulator, a fresh FIR trace,
and a fresh log.  Workloads build their system inside the cluster, drive
it, and the harness summarizes the outcome as a :class:`RunResult` that
failure oracles inspect.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Generator, Optional

from ..injection.fir import FIR, InjectionPlan, TraceEvent
from ..logs.record import LogFile
from ..obs import VIRTUAL
from ..obs import metrics as obs_metrics
from .env import Env
from .network import Network
from .scheduler import Simulator, Task, TaskState
from .slog import LogCollector, SimLogger
from .storage import Disk
from .sync import Condition, Executor, Future, Lock, Queue, SerialExecutor


@dataclasses.dataclass(frozen=True)
class TaskSummary:
    """Terminal state of one task, as seen by oracles."""

    name: str
    state: str
    stack: tuple[str, ...]          # function names, outermost first
    error_type: str = ""
    error_message: str = ""

    def blocked_in(self, function: str) -> bool:
        return self.state == TaskState.BLOCKED.value and function in self.stack


@dataclasses.dataclass
class RunResult:
    """Everything one run produced."""

    log: LogFile
    trace: list[TraceEvent]
    injected: bool
    injected_instance: Optional[Any]
    stuck: list[TaskSummary]
    crashed: list[TaskSummary]
    state: dict[str, Any]
    end_time: float
    site_counts: dict[str, int]
    injection_requests: int = 0
    decision_seconds: float = 0.0
    base_faults_fired: list = dataclasses.field(default_factory=list)
    #: Virtual time at which the early-verdict monitor cut the run short
    #: (``None`` = the run executed to its horizon).  Truncated results
    #: are oracle-equivalent to the full run but carry a shorter log and
    #: smaller counters, so full-run consumers must never receive one —
    #: the run cache segregates them by monitor key.
    truncated_at: Optional[float] = None

    def stuck_in(self, function: str, task_prefix: str = "") -> bool:
        """Whether some (matching) task ended the run blocked in ``function``."""
        return any(
            summary.blocked_in(function)
            for summary in self.stuck
            if summary.name.startswith(task_prefix)
        )

    def log_contains(self, fragment: str) -> bool:
        return any(fragment in record.message for record in self.log)


class Cluster:
    """One simulated deployment plus its observation and injection plumbing."""

    def __init__(self, seed: int = 0, fir: Optional[FIR] = None) -> None:
        self.seed = seed
        self.sim = Simulator(seed)
        self.collector = LogCollector()
        self.net = Network(self.sim)
        self.disk = Disk()
        self.fir = fir if fir is not None else FIR()
        self.fir.bind(
            log_index_fn=lambda: len(self.collector),
            clock=lambda: self.sim.now,
        )
        self.env = Env(self)
        #: Free-form state registry the systems publish into for oracles.
        self.state: dict[str, Any] = {}
        self.sim.on_task_crash(self._log_crash)
        self._crash_log = SimLogger(self.sim, self.collector)

    # ------------------------------------------------------------- conveniences

    def logger(self) -> SimLogger:
        return SimLogger(self.sim, self.collector)

    def spawn(self, name: str, gen: Generator[Any, Any, Any]) -> Task:
        return self.sim.spawn(name, gen)

    def condition(self, name: str = "cond") -> Condition:
        return Condition(self.sim, name)

    def lock(self, name: str = "lock") -> Lock:
        return Lock(self.sim, name)

    def queue(self, name: str = "queue", capacity: Optional[int] = None) -> Queue:
        return Queue(self.sim, name, capacity)

    def future(self, name: str = "future") -> Future:
        return Future(self.sim, name)

    def executor(self, name: str) -> Executor:
        return Executor(self.sim, name)

    def serial_executor(self, name: str) -> SerialExecutor:
        return SerialExecutor(self.sim, name)

    def sleep(self, delay: float):
        from .scheduler import Sleep

        return Sleep(delay)

    # -------------------------------------------------------------------- runs

    def run(self, horizon: float, monitor=None) -> RunResult:
        """Run to the horizon (or the monitor's cutoff) and summarize."""
        truncated_at: Optional[float] = None
        if self.sim.run(until=horizon, monitor=monitor):
            truncated_at = self.sim.now
            obs_metrics.increment("verdict.cutoffs")
            obs_metrics.increment(
                "verdict.virtual_seconds_saved", horizon - self.sim.now
            )
            obs_metrics.increment("verdict.events_saved", len(self.sim._heap))
        recorder = self.fir.recorder
        if recorder is not None and recorder.enabled:
            # The whole run is one virtual-clock span (deterministic per
            # (seed, plan)); scheduler/network/FIR totals become counters.
            recorder.add_span(
                "workload.run",
                "sim",
                clock=VIRTUAL,
                start=0.0,
                duration=self.sim.now,
                seed=self.seed,
            )
            recorder.count("runs", 1)
            recorder.count("sim.events_executed", self.sim.events_executed)
            recorder.count("sim.virtual_seconds", self.sim.now)
            recorder.count("net.messages_sent", self.net.sent_count)
            recorder.count("net.messages_delivered", self.net.delivered_count)
            recorder.count("fir.requests", self.fir.request_count)
            recorder.count("fir.decision_seconds", self.fir.decision_seconds)
            recorder.count("log.records", len(self.collector))
        stuck = [
            self._summarize(task)
            for task in self.sim.tasks
            if task.state is TaskState.BLOCKED
        ]
        crashed = [
            self._summarize(task)
            for task in self.sim.tasks
            if task.state is TaskState.FAILED
        ]
        return RunResult(
            log=self.collector.log,
            trace=list(self.fir.trace),
            injected=self.fir.fired is not None,
            injected_instance=self.fir.fired,
            stuck=stuck,
            crashed=crashed,
            state=dict(self.state),
            end_time=self.sim.now,
            site_counts=dict(self.fir.counts),
            injection_requests=self.fir.request_count,
            decision_seconds=self.fir.decision_seconds,
            base_faults_fired=list(self.fir.always_fired),
            truncated_at=truncated_at,
        )

    def _summarize(self, task: Task) -> TaskSummary:
        return TaskSummary(
            name=task.name,
            state=task.state.value,
            stack=tuple(task.stack_functions()),
            error_type=type(task.error).__name__ if task.error else "",
            error_message=str(task.error) if task.error else "",
        )

    def _log_crash(self, task: Task) -> None:
        """Default uncaught-exception handler: log like a JVM would."""
        self._crash_log.exception(
            "Unhandled exception in thread %s",
            task.name,
            exc=task.error,
        )

    # ------------------------------------------------------------- checkpoint

    def capture(self) -> dict:
        """Aggregate snapshot of every component's restorable state.

        Live generator frames (tasks, pending scheduler events) cannot be
        serialized, so this is not a resumable image — process forking
        (:mod:`repro.sim.checkpoint`) is what clones those.  It *is* a
        complete picture of the data state, which the round-trip tests
        and :func:`snapshot_fingerprint` build on.
        """
        return {
            "seed": self.seed,
            "sim": self.sim.capture(),
            "fir": self.fir.capture(),
            "disk": self.disk.capture(),
            "net": self.net.capture(),
            "slog": self.collector.capture(),
            "state": dict(self.state),
        }

    def restore(self, snapshot: dict) -> None:
        """Restore the data state captured by :meth:`capture`."""
        self.seed = snapshot["seed"]
        self.sim.restore(snapshot["sim"])
        self.fir.restore(snapshot["fir"])
        self.disk.restore(snapshot["disk"])
        self.net.restore(snapshot["net"])
        self.collector.restore(snapshot["slog"])
        self.state = dict(snapshot["state"])


WorkloadFn = Callable[[Cluster], Any]


def execute_workload(
    workload: WorkloadFn,
    horizon: float,
    seed: int = 0,
    plan: Optional[InjectionPlan] = None,
    tracing: bool = True,
    recorder=None,
    monitor=None,
) -> RunResult:
    """Run ``workload`` in a fresh cluster with an optional injection plan.

    ``recorder`` (a ``repro.obs.TraceRecorder``) enables run-level
    profiling: FIR decision timing, injection-decision events, and the
    scheduler/network counters.  ``None`` (the default) keeps the run on
    the timing-free path.  ``monitor`` (a fresh
    ``repro.core.verdict.VerdictMonitor``) attaches before the workload
    builds the system and may cut the run short once the oracle's
    verdict is decided.
    """
    cluster = Cluster(seed=seed)
    cluster.fir.tracing = tracing
    if recorder is not None and recorder.enabled:
        cluster.fir.recorder = recorder
    cluster.fir.set_plan(plan)
    if monitor is not None:
        monitor.attach(cluster)
    workload(cluster)
    return cluster.run(horizon, monitor=monitor)
