"""The environment boundary: every fault site lives here.

Mini systems never touch the disk or the network directly; they call the
methods of an :class:`Env` handle.  Each method is the analog of a
standard-library / third-party call in the paper's targets — the
*external-exception* sources of the causal graph (§4.1) — and each one
reports its caller's source location to the FIR before doing the real
work, which gives the FIR the chance to throw the planned exception at
exactly that site and occurrence.

``ENV_OPS`` maps each operation to the exception types it can throw; the
static analyzer uses the same table to enumerate fault candidates, so the
static and dynamic fault spaces agree by construction.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Optional, TYPE_CHECKING

from ..injection.corruptions import ENV_OP_CORRUPTIONS  # noqa: F401 (re-export)
from ..injection.sites import SiteRef, normalize_path
from .errors import TimeoutIOException
from .network import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cluster import Cluster

#: op name -> exception type names the op can raise (ordered: most typical
#: first; the analyzer emits one fault candidate per type).
ENV_OPS: dict[str, tuple[str, ...]] = {
    "disk_write": ("IOException",),
    "disk_append": ("IOException",),
    "disk_read": ("IOException", "FileNotFoundException", "EOFException"),
    "disk_delete": ("IOException",),
    "disk_list": ("IOException",),
    "disk_sync": ("IOException", "TimeoutIOException"),
    "sock_connect": ("ConnectException", "SocketException"),
    "sock_send": ("SocketException", "IOException"),
    "sock_recv": ("IOException", "EOFException", "SocketException"),
    "codec_decode": ("IOException", "EOFException"),
    "net_transfer": ("IOException", "TimeoutIOException", "InterruptedException"),
}


#: Interned SiteRefs keyed by (filename, line, op).  A mini system has
#: a few hundred static sites but executes them millions of times per
#: campaign; reusing one SiteRef per site skips the per-call dataclass
#: allocation and keeps its cached ``site_id`` warm.  Keying on the
#: filename string (whose hash is computed once and cached by the str
#: object) rather than the code object keeps entries valid across module
#: reloads — a regenerated module gets fresh code objects but the same
#: file/line identity — and stops the cache pinning dead code objects.
_SITE_CACHE: dict[tuple[str, int, str], SiteRef] = {}


def clear_site_cache() -> None:
    """Drop all interned sites (call when a workload module is reloaded).

    Entries are keyed by file/line, so a reload of *unchanged* source
    keeps serving correct identities even without a clear; clearing is
    for edited/regenerated modules (the ``repro gen`` direction) where a
    cached line may no longer match the new source, and it bounds the
    cache across many generated workloads.
    """
    _SITE_CACHE.clear()


class Env:
    """Environment handle bound to one cluster.

    All methods are synchronous: time passes only at explicit sleeps and
    waits, so an env call is an atomic step of the calling task.
    """

    def __init__(self, cluster: "Cluster") -> None:
        self._cluster = cluster

    def _site(self, op: str) -> Optional[Callable[[Any], Any]]:
        """Report the *caller's* location as a fault site.

        May raise (injected exception), and may return a value-corruption
        applier that the read-path ops run their result through.
        """
        frame = sys._getframe(2)
        code = frame.f_code
        key = (code.co_filename, frame.f_lineno, op)
        site = _SITE_CACHE.get(key)
        if site is None:
            site = SiteRef(
                file=normalize_path(code.co_filename),
                line=frame.f_lineno,
                function=code.co_name,
                op=op,
            )
            _SITE_CACHE[key] = site
        return self._cluster.fir.on_site(site)

    # -------------------------------------------------------------------- disk

    def disk_write(self, path: str, data: bytes) -> None:
        self._site("disk_write")
        self._cluster.disk.write(path, data)

    def disk_append(self, path: str, data: bytes) -> None:
        self._site("disk_append")
        self._cluster.disk.append(path, data)

    def disk_read(self, path: str) -> bytes:
        corrupt = self._site("disk_read")
        data = self._cluster.disk.read(path)
        return corrupt(data) if corrupt is not None else data

    def disk_delete(self, path: str) -> None:
        self._site("disk_delete")
        self._cluster.disk.delete(path)

    def disk_list(self, prefix: str) -> list[str]:
        corrupt = self._site("disk_list")
        names = self._cluster.disk.listdir(prefix)
        return corrupt(names) if corrupt is not None else names

    def disk_sync(self, path: str) -> None:
        self._site("disk_sync")
        if not self._cluster.disk.exists(path):
            raise TimeoutIOException(f"sync of missing file {path}")

    # ----------------------------------------------------------------- network

    def sock_connect(self, src: str, dst: str) -> None:
        """Check that ``dst`` is reachable from ``src``."""
        self._site("sock_connect")
        # Reachability errors are organic faults; raise through the inbox
        # lookup which produces ConnectException.
        self._cluster.net.inbox(dst)

    def sock_send(
        self,
        src: str,
        dst: str,
        kind: str,
        payload: Any = None,
        reply_to: str | None = None,
    ) -> None:
        self._site("sock_send")
        self._cluster.net.send(
            Message(src=src, dst=dst, kind=kind, payload=payload, reply_to=reply_to)
        )

    def sock_recv(self, message: Message) -> Message:
        """Deserialize a message pulled off an inbox (receive-side site)."""
        corrupt = self._site("sock_recv")
        return corrupt(message) if corrupt is not None else message

    def codec_decode(self, blob: Any) -> Any:
        """Decode serialized data (protobuf / WAL codec analog)."""
        corrupt = self._site("codec_decode")
        return corrupt(blob) if corrupt is not None else blob

    def net_transfer(self, src: str, dst: str, size: int) -> int:
        """Bulk data transfer (image upload, balancer move, streaming).

        Unlike :meth:`sock_send`, a transfer is interruptible, so it can
        also fail with ``InterruptedException``.
        """
        corrupt = self._site("net_transfer")
        if not self._cluster.net.reachable(src, dst):
            from .errors import SocketException

            raise SocketException(f"transfer from {src} to {dst} failed")
        return corrupt(size) if corrupt is not None else size
