"""Interprocedural exception analysis (§4.1, "Exception Analysis").

For every function we compute its *throw points* — program points at
which an exception can surface inside the function — and whether each
point is caught by an enclosing handler or escapes the function:

* ``external`` — an env-boundary call (library fault; injectable site);
* ``new`` — a ``raise NewType(...)`` in system code;
* ``reraise`` — a bare ``raise`` inside a handler;
* ``call`` — a synchronous call whose callee lets an exception escape;
* ``async`` — an executor submission whose job can fail; the failure
  surfaces as an ``ExecutionException`` (cross-thread propagation through
  futures, modeled at the submission site).

Escape sets are computed to a fixpoint over the name-resolved call graph,
so exception flow crosses function and module boundaries the same way the
paper's Soot-based analysis does.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Optional

from .ast_facts import FunctionFact, HandlerFact
from .system_model import SystemModel

KIND_EXTERNAL = "external"
KIND_NEW = "new"
KIND_RERAISE = "reraise"
KIND_CALL = "call"
KIND_ASYNC = "async"


@dataclasses.dataclass(frozen=True)
class ThrowPoint:
    """A point inside ``function`` where exception ``exc_type`` can surface."""

    file: str
    line: int
    function: str        # qualname of the function containing the point
    exc_type: str
    kind: str
    site_id: str = ""    # kind == external
    callee: str = ""     # kind in (call, async)


def _handler_key(handler: HandlerFact) -> tuple[str, int]:
    return (handler.file, handler.line)


class ExceptionAnalysis:
    """Fixpoint exception-flow analysis over a :class:`SystemModel`."""

    def __init__(self, model: SystemModel) -> None:
        self.model = model
        #: qualname -> throw points that escape the function
        self.escaping: dict[str, list[ThrowPoint]] = {}
        #: (handler file, handler line) -> points that handler catches
        self.caught: dict[tuple[str, int], list[ThrowPoint]] = {}
        #: qualname -> set of escaping exception type names
        self.escaping_types: dict[str, set[str]] = {}
        self.elapsed_seconds = 0.0
        self._run()

    # ------------------------------------------------------------------ public

    def escaping_points(
        self, qualname: str, exc_type: Optional[str] = None
    ) -> list[ThrowPoint]:
        points = self.escaping.get(qualname, [])
        if exc_type is None:
            return points
        return [point for point in points if point.exc_type == exc_type]

    def caught_by(self, handler: HandlerFact) -> list[ThrowPoint]:
        return self.caught.get(_handler_key(handler), [])

    # --------------------------------------------------------------- algorithm

    def _run(self) -> None:
        started = time.perf_counter()
        model = self.model
        escaping_types: dict[str, set[str]] = {
            fn.qualname: set() for fn in model.functions
        }

        # Fixpoint on escaping type sets.
        changed = True
        while changed:
            changed = False
            for fn in model.functions:
                points = self._points_for(fn, escaping_types)
                escapes: set[str] = set()
                for point in points:
                    if self._catching_handler(fn, point) is None:
                        escapes.add(point.exc_type)
                if not escapes <= escaping_types[fn.qualname]:
                    escaping_types[fn.qualname] |= escapes
                    changed = True

        self.escaping_types = escaping_types

        # Final pass: materialize points and the caught/escaping partition.
        for fn in model.functions:
            for point in self._points_for(fn, escaping_types):
                handler = self._catching_handler(fn, point)
                if handler is None:
                    self.escaping.setdefault(fn.qualname, []).append(point)
                else:
                    self.caught.setdefault(_handler_key(handler), []).append(point)
        self.elapsed_seconds = time.perf_counter() - started

    def _points_for(
        self, fn: FunctionFact, escaping_types: dict[str, set[str]]
    ) -> list[ThrowPoint]:
        model = self.model
        points: list[ThrowPoint] = []

        for env_call in model.env_calls_in(fn.qualname):
            for exc_type in env_call.exception_types:
                points.append(
                    ThrowPoint(
                        file=env_call.file,
                        line=env_call.line,
                        function=fn.qualname,
                        exc_type=exc_type,
                        kind=KIND_EXTERNAL,
                        site_id=env_call.site_id,
                    )
                )

        for raise_fact in model.raises_in(fn.qualname):
            if raise_fact.exception:
                points.append(
                    ThrowPoint(
                        file=raise_fact.file,
                        line=raise_fact.line,
                        function=fn.qualname,
                        exc_type=raise_fact.exception,
                        kind=KIND_NEW,
                    )
                )
            elif raise_fact.handler_line:
                handler = model.handler_by_line(
                    raise_fact.file, raise_fact.handler_line
                )
                if handler is not None:
                    for exc_type in handler.exceptions:
                        points.append(
                            ThrowPoint(
                                file=raise_fact.file,
                                line=raise_fact.line,
                                function=fn.qualname,
                                exc_type=exc_type,
                                kind=KIND_RERAISE,
                            )
                        )

        for call in model.calls_in(fn.qualname):
            if call.is_spawn:
                # A crash of a spawned task does not propagate to the
                # spawner; it surfaces through the crash handler (logged).
                continue
            callee_types: set[str] = set()
            for callee in model.functions_named(call.callee):
                callee_types |= escaping_types.get(callee.qualname, set())
            if not callee_types:
                continue
            if call.is_submit:
                points.append(
                    ThrowPoint(
                        file=call.file,
                        line=call.line,
                        function=fn.qualname,
                        exc_type="ExecutionException",
                        kind=KIND_ASYNC,
                        callee=call.callee,
                    )
                )
            else:
                for exc_type in sorted(callee_types):
                    points.append(
                        ThrowPoint(
                            file=call.file,
                            line=call.line,
                            function=fn.qualname,
                            exc_type=exc_type,
                            kind=KIND_CALL,
                            callee=call.callee,
                        )
                    )
        return points

    def _catching_handler(
        self, fn: FunctionFact, point: ThrowPoint
    ) -> Optional[HandlerFact]:
        """Innermost enclosing handler of ``point`` that catches its type.

        A point lexically inside a handler body is not covered by that
        handler's own try body, so re-raises naturally look outward.
        """
        for try_fact in self.model.enclosing_trys(fn.qualname, point.line):
            for handler in try_fact.handlers:
                if self.model.handler_catches(handler, point.exc_type):
                    return handler
        return None
