"""Interprocedural fault-propagation dataflow (the *flow pass*).

Where :class:`~repro.analysis.exceptions.ExceptionAnalysis` answers "which
exception types escape each function?", this pass answers the forward
question the Explorer actually cares about: *if exception E surfaces at
env-boundary site S, what can the system observably do about it?*  For
every ``(site, exception)`` pair it walks the propagation chain — through
the innermost catching handler, any typed or bare re-raises, and up the
name-resolved synchronous call graph when the exception escapes — and
records, per pair:

* the **handler chain** traversed (file, line, enclosing function);
* the **log statements** statically reachable on the handling path, split
  into *direct* (lexically inside a handler span) and *callee* (inside
  the closure of functions called from a handler span);
* the **state mutations** the handlers perform (assignments in the
  handler span of the propagating function); and
* whether the pair can **crash a task**: escape from a spawned task's
  top frame, from a function with no callers, or from an unresolvable
  frame — all of which terminate a scheduler task rather than return.

Cross-thread and cross-process propagation is modeled explicitly as
:class:`CrossEdge` records mirroring the ``repro.sim`` runtime: ``spawn``
(scheduler tasks), ``submit`` (executor jobs whose failures surface as
``ExecutionException`` at the submission site — same convention as the
exception analysis), ``queue`` (a ``put`` paired with a ``get`` on the
same receiver name), and ``message`` (an env-boundary ``sock_send``
paired with the functions that ``sock_recv``).

The result is a serializable :class:`PropagationGraph`; consumers are the
static fault-space pruner (:mod:`repro.core.pruning`), the concurrency
rule pack (:mod:`repro.analysis.rules`), and the Explorer's reachability
prior.  The graph is a pure function of the analyzed package's source,
so it caches cleanly under the PR 5 workload fingerprint
(:mod:`repro.cache.flowcache`).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, Mapping, Optional

from .system_model import SystemModel

SCHEMA_VERSION = 1

#: Call names that enqueue into / dequeue from a ``repro.sim`` queue.
QUEUE_PUT_CALLEES = frozenset({"put", "put_nowait"})
QUEUE_GET_CALLEES = frozenset({"get", "get_nowait"})

#: Env-boundary ops forming a network message edge (send -> deliver).
MESSAGE_SEND_OPS = frozenset({"sock_send"})
MESSAGE_RECV_OPS = frozenset({"sock_recv", "sock_accept"})


@dataclasses.dataclass(frozen=True)
class CrossEdge:
    """One cross-thread / cross-process propagation edge.

    ``kind`` is ``spawn`` | ``submit`` | ``queue`` | ``message``.  The
    edge points from the program point that *hands work off* (``file``,
    ``line`` inside ``source``) to the ``target`` that continues it: the
    spawned/submitted callable, or the function on the receiving end of
    a queue/socket.  ``channel`` names the carrier — the queue receiver
    or the env op pair — and is empty for spawn/submit edges.
    """

    kind: str
    file: str
    line: int
    source: str
    target: str
    channel: str = ""

    def to_list(self) -> list:
        return [self.kind, self.file, self.line, self.source, self.target, self.channel]

    @classmethod
    def from_list(cls, data: Iterable) -> "CrossEdge":
        kind, file, line, source, target, channel = data
        return cls(kind, file, int(line), source, target, channel)


@dataclasses.dataclass(frozen=True)
class PropagationPath:
    """What one ``(site, exception)`` pair can statically reach."""

    site_id: str
    exception: str
    #: Handler chain in propagation order: (file, line, enclosing function).
    handlers: tuple[tuple[str, int, str], ...]
    #: Template ids of log statements lexically inside a handler span.
    logs: tuple[str, ...]
    #: Template ids reachable through calls made from a handler span.
    callee_logs: tuple[str, ...]
    #: Handler-path state mutations: (file, line, variable).
    mutations: tuple[tuple[str, int, str], ...]
    #: True when the pair can terminate a scheduler task.
    crash: bool

    @property
    def all_logs(self) -> frozenset[str]:
        return frozenset(self.logs) | frozenset(self.callee_logs)

    def to_dict(self) -> dict:
        return {
            "site": self.site_id,
            "exception": self.exception,
            "handlers": [list(entry) for entry in self.handlers],
            "logs": list(self.logs),
            "callee_logs": list(self.callee_logs),
            "mutations": [list(entry) for entry in self.mutations],
            "crash": self.crash,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PropagationPath":
        return cls(
            site_id=data["site"],
            exception=data["exception"],
            handlers=tuple(
                (entry[0], int(entry[1]), entry[2]) for entry in data["handlers"]
            ),
            logs=tuple(data["logs"]),
            callee_logs=tuple(data["callee_logs"]),
            mutations=tuple(
                (entry[0], int(entry[1]), entry[2]) for entry in data["mutations"]
            ),
            crash=bool(data["crash"]),
        )


class PropagationGraph:
    """The serializable product of the flow pass for one package.

    ``paths`` maps every ``(site_id, exception)`` pair drawn from the env
    catalog to its :class:`PropagationPath`.  ``condition_variables`` is
    the set of variables that appear in branch/loop conditions anywhere
    in the package, baked in at build time so :meth:`pair_live` is
    self-contained after deserialization.
    """

    def __init__(
        self,
        paths: Mapping[tuple[str, str], PropagationPath],
        cross_edges: Iterable[CrossEdge],
        condition_variables: Iterable[str],
        package: str = "",
        build_seconds: float = 0.0,
    ) -> None:
        self.paths: dict[tuple[str, str], PropagationPath] = dict(paths)
        self.cross_edges: tuple[CrossEdge, ...] = tuple(cross_edges)
        self.condition_variables: frozenset[str] = frozenset(condition_variables)
        self.package = package
        self.build_seconds = build_seconds

    # ------------------------------------------------------------- queries

    def path(self, site_id: str, exception: str) -> Optional[PropagationPath]:
        return self.paths.get((site_id, exception))

    def pair_live(self, site_id: str, exception: str) -> bool:
        """Can this pair leave any statically observable mark?

        Live means the propagation path reaches a log statement, can
        crash a task (the log truncates — itself a divergence), or
        mutates state that some branch condition later reads.  A pair
        the catalog does not know is conservatively live.
        """
        path = self.paths.get((site_id, exception))
        if path is None:
            return True
        if path.logs or path.callee_logs or path.crash:
            return True
        return any(
            variable in self.condition_variables
            for _file, _line, variable in path.mutations
        )

    def dead_pairs(self) -> frozenset[tuple[str, str]]:
        return frozenset(
            key for key in self.paths if not self.pair_live(*key)
        )

    def edges_of(self, kind: str) -> tuple[CrossEdge, ...]:
        return tuple(edge for edge in self.cross_edges if edge.kind == kind)

    # -------------------------------------------------------- serialization

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA_VERSION,
            "package": self.package,
            "pairs": [
                self.paths[key].to_dict() for key in sorted(self.paths)
            ],
            "cross_edges": [
                edge.to_list() for edge in self.cross_edges
            ],
            "condition_variables": sorted(self.condition_variables),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PropagationGraph":
        schema = int(data.get("schema", 0))
        if schema > SCHEMA_VERSION:
            raise ValueError(
                f"propagation graph schema {schema} is newer than "
                f"supported {SCHEMA_VERSION}"
            )
        paths = {}
        for entry in data["pairs"]:
            path = PropagationPath.from_dict(entry)
            paths[(path.site_id, path.exception)] = path
        return cls(
            paths=paths,
            cross_edges=[
                CrossEdge.from_list(entry) for entry in data["cross_edges"]
            ],
            condition_variables=data["condition_variables"],
            package=data.get("package", ""),
        )

    def summary(self) -> dict:
        """Compact counts for CLI / report output."""
        dead = self.dead_pairs()
        edge_kinds: dict[str, int] = {}
        for edge in self.cross_edges:
            edge_kinds[edge.kind] = edge_kinds.get(edge.kind, 0) + 1
        return {
            "pairs": len(self.paths),
            "live_pairs": len(self.paths) - len(dead),
            "dead_pairs": len(dead),
            "handlers": len(
                {entry for path in self.paths.values() for entry in path.handlers}
            ),
            "cross_edges": {kind: edge_kinds[kind] for kind in sorted(edge_kinds)},
            "build_seconds": round(self.build_seconds, 6),
        }


class FlowAnalysis:
    """Builds a :class:`PropagationGraph` from a :class:`SystemModel`.

    The propagation walk mirrors the runtime semantics of ``repro.sim``:

    * an exception surfacing at ``(function, line)`` is handled by the
      innermost enclosing ``try`` whose handler catches the type
      (:meth:`SystemModel.handler_catches` honors bases and bare
      ``except``);
    * a handler's effect is what its span contains — logs, assignments,
      calls (whose closures are scanned for logs), and re-raises, which
      continue the walk (typed raises with their own type, bare ``raise``
      with the in-flight type);
    * an uncaught exception escapes to every *synchronous* caller (by
      callee name, matching the exception analysis) and continues there;
      at ``submit`` call sites it resurfaces as ``ExecutionException``;
      escaping from a spawned callable, an unresolvable function, or a
      function with no callers terminates the task — a crash.

    The walk is memoized on ``(function, line, exception)`` and cycle-
    guarded, so recursive retry loops terminate.
    """

    def __init__(self, model: SystemModel) -> None:
        self.model = model
        self._memo: dict[tuple[str, int, str], dict] = {}

    # --------------------------------------------------------------- build

    def build(self, package: str = "") -> PropagationGraph:
        started = time.perf_counter()
        model = self.model
        paths: dict[tuple[str, str], PropagationPath] = {}
        for env_call in model.env_calls:
            for exception in env_call.exception_types:
                result = self._propagate(
                    env_call.function, env_call.line, exception, frozenset()
                )
                paths[(env_call.site_id, exception)] = PropagationPath(
                    site_id=env_call.site_id,
                    exception=exception,
                    handlers=tuple(sorted(result["handlers"])),
                    logs=tuple(sorted(result["logs"])),
                    callee_logs=tuple(sorted(result["callee_logs"])),
                    mutations=tuple(sorted(result["mutations"])),
                    crash=result["crash"],
                )
        graph = PropagationGraph(
            paths=paths,
            cross_edges=self._cross_edges(),
            condition_variables={
                variable
                for condition in model.conditions
                for variable in condition.variables
            },
            package=package,
            build_seconds=time.perf_counter() - started,
        )
        return graph

    # --------------------------------------------------------- propagation

    def _empty(self) -> dict:
        return {
            "logs": set(),
            "callee_logs": set(),
            "crash": False,
            "mutations": set(),
            "handlers": set(),
        }

    def _merge(self, out: dict, sub: dict) -> None:
        out["logs"] |= sub["logs"]
        out["callee_logs"] |= sub["callee_logs"]
        out["crash"] = out["crash"] or sub["crash"]
        out["mutations"] |= sub["mutations"]
        out["handlers"] |= sub["handlers"]

    def _propagate(
        self, qualname: str, line: int, exception: str, seen: frozenset
    ) -> dict:
        key = (qualname, line, exception)
        if key in seen:
            return self._empty()
        memo = self._memo.get(key)
        if memo is not None:
            return memo
        seen = seen | {key}
        out = self._empty()
        model = self.model

        handler = None
        for try_fact in model.enclosing_trys(qualname, line):
            for candidate in try_fact.handlers:
                if model.handler_catches(candidate, exception):
                    handler = candidate
                    break
            if handler is not None:
                break

        if handler is not None:
            out["handlers"].add((handler.file, handler.line, qualname))
            span_file = handler.file
            span_start = handler.body_start
            span_end = handler.body_end
            for log in model.logs:
                if log.file == span_file and span_start <= log.line <= span_end:
                    out["logs"].add(log.template_id)
            for assign in model.assigns:
                if (
                    assign.file == span_file
                    and span_start <= assign.line <= span_end
                    and assign.function == qualname
                ):
                    for target in assign.targets:
                        out["mutations"].add((assign.file, assign.line, target))
            for call in model.calls_in(qualname):
                if call.file == span_file and span_start <= call.line <= span_end:
                    self._callee_logs(call.callee, out, set())
            for raise_fact in model.raises_in(qualname):
                if not (
                    raise_fact.file == span_file
                    and span_start <= raise_fact.line <= span_end
                ):
                    continue
                if raise_fact.exception:
                    sub = self._propagate(
                        qualname, raise_fact.line, raise_fact.exception, seen
                    )
                elif raise_fact.handler_line == handler.line:
                    sub = self._propagate(qualname, raise_fact.line, exception, seen)
                else:
                    continue
                self._merge(out, sub)
        else:
            fn = model.function(qualname)
            if fn is None:
                out["crash"] = True
            else:
                callers = list(model.calls_to(fn.name))
                if not callers or any(call.is_spawn for call in callers):
                    out["crash"] = True
                for call in callers:
                    if call.is_spawn:
                        continue
                    if call.is_submit:
                        sub = self._propagate(
                            call.caller, call.line, "ExecutionException", seen
                        )
                    else:
                        sub = self._propagate(call.caller, call.line, exception, seen)
                    self._merge(out, sub)

        self._memo[key] = out
        return out

    def _callee_logs(self, callee_name: str, out: dict, seen: set) -> None:
        """Logs anywhere in the call closure rooted at ``callee_name``."""
        for fn in self.model.functions_named(callee_name):
            if fn.qualname in seen:
                continue
            seen.add(fn.qualname)
            for log in self.model.logs:
                if log.function == fn.qualname:
                    out["callee_logs"].add(log.template_id)
            for call in self.model.calls_in(fn.qualname):
                self._callee_logs(call.callee, out, seen)

    # --------------------------------------------------------- cross edges

    def _cross_edges(self) -> list[CrossEdge]:
        model = self.model
        edges: list[CrossEdge] = []

        for call in model.calls:
            if call.is_spawn:
                edges.append(
                    CrossEdge(
                        kind="spawn",
                        file=call.file,
                        line=call.line,
                        source=call.caller,
                        target=call.callee,
                    )
                )
            elif call.is_submit:
                edges.append(
                    CrossEdge(
                        kind="submit",
                        file=call.file,
                        line=call.line,
                        source=call.caller,
                        target=call.callee,
                    )
                )

        # Queue hand-off: a put and a get on the same receiver name pair
        # up — the put site hands control to every function that gets.
        puts: dict[str, list] = {}
        getters: dict[str, set[str]] = {}
        for call in model.calls:
            if not call.owner:
                continue
            if call.callee in QUEUE_PUT_CALLEES:
                puts.setdefault(call.owner, []).append(call)
            elif call.callee in QUEUE_GET_CALLEES:
                getters.setdefault(call.owner, set()).add(call.caller)
        for owner, put_calls in sorted(puts.items()):
            for target in sorted(getters.get(owner, ())):
                for call in put_calls:
                    edges.append(
                        CrossEdge(
                            kind="queue",
                            file=call.file,
                            line=call.line,
                            source=call.caller,
                            target=target,
                            channel=owner,
                        )
                    )

        # Network message edge: env sends pair with env receives.
        recv_functions = sorted(
            {
                env_call.function
                for env_call in model.env_calls
                if env_call.op in MESSAGE_RECV_OPS
            }
        )
        for env_call in model.env_calls:
            if env_call.op not in MESSAGE_SEND_OPS:
                continue
            for target in recv_functions:
                edges.append(
                    CrossEdge(
                        kind="message",
                        file=env_call.file,
                        line=env_call.line,
                        source=env_call.function,
                        target=target,
                        channel=f"{env_call.op}->sock_recv",
                    )
                )
        return edges


def build_propagation_graph(
    model: SystemModel, package: str = ""
) -> PropagationGraph:
    """Convenience entry point: run the flow pass over ``model``."""
    return FlowAnalysis(model).build(package=package)


def task_root_closure(model: SystemModel, graph: PropagationGraph) -> dict[str, frozenset[str]]:
    """Map each task root (spawn/submit target) to its call closure.

    Task roots are the entry points of concurrent execution; the closure
    is every function reachable from the root through the name-resolved
    call graph.  The concurrency rule pack uses this to decide whether
    two program points can run on different tasks.
    """
    closures: dict[str, frozenset[str]] = {}
    roots = sorted(
        {
            edge.target
            for edge in graph.cross_edges
            if edge.kind in ("spawn", "submit")
        }
    )
    for root in roots:
        seen: set[str] = set()
        frontier = [root]
        while frontier:
            name = frontier.pop()
            for fn in model.functions_named(name):
                if fn.qualname in seen:
                    continue
                seen.add(fn.qualname)
                for call in model.calls_in(fn.qualname):
                    frontier.append(call.callee)
        closures[root] = frozenset(seen)
    return closures


def reachability_weights(
    graph: PropagationGraph, relevant_templates: Iterable[str]
) -> dict[str, float]:
    """Per-site reachability prior for the Explorer's warm start.

    A site whose exception can *directly* reach a relevant observable
    (a log template that participates in the failure's divergence) gets
    full weight; reaching it only through a handler-callee closure gets
    half; a pair that can only crash a task gets a quarter (the log
    truncates, which is itself a divergence).  Per site, the best
    exception wins.  The shape matches ``LintReport.site_weights()`` so
    :class:`~repro.core.priority.FaultPriorityPool` can consume either.
    """
    relevant = frozenset(relevant_templates)
    weights: dict[str, float] = {}
    for (site_id, _exception), path in graph.paths.items():
        if relevant & frozenset(path.logs):
            weight = 1.0
        elif relevant & frozenset(path.callee_logs):
            weight = 0.5
        elif path.crash:
            weight = 0.25
        else:
            weight = 0.0
        if weight > weights.get(site_id, 0.0):
            weights[site_id] = weight
    return {site: weight for site, weight in weights.items() if weight > 0.0}
