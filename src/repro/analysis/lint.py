"""Static fault-handling defect detector over a :class:`SystemModel`.

The causal model already knows every try/except, env-boundary call, and
exception-flow edge of a system; this pass judges the *handlers*: a
rule catalog (see :mod:`repro.analysis.rules`) scans the model plus the
interprocedural :class:`ExceptionAnalysis` and emits structured findings
(rule id, severity, file:line, implicated fault sites, message).

Two consumers:

* the ``python -m repro lint`` CLI renders a report in text or JSON;
* the Explorer's *lint prior* boosts the site priority ``F_i`` of fault
  sites implicated by findings, warm-starting the search.
"""

from __future__ import annotations

import dataclasses
import json
import time
import warnings
from typing import Iterable, Optional

from .exceptions import ExceptionAnalysis
from .rules import Finding, LintContext, registered_rules, severity_rank
from .system_model import SystemModel, analyze_package


@dataclasses.dataclass
class LintReport:
    """All findings of one lint run, with rendering helpers."""

    package: str
    rule_ids: tuple[str, ...]
    findings: list[Finding]
    elapsed_seconds: float = 0.0

    def __len__(self) -> int:
        return len(self.findings)

    def by_rule(self) -> dict[str, list[Finding]]:
        """Findings grouped by rule id, in the report's rule order.

        A finding whose rule id is not in ``rule_ids`` — a report built
        from persisted findings of a retired rule, or hand-constructed
        in tests — lands in an explicit ``"unknown"`` bucket (with one
        warning naming the stray ids) instead of silently growing the
        keyspace out of order.
        """
        grouped: dict[str, list[Finding]] = {rule_id: [] for rule_id in self.rule_ids}
        unknown: list[Finding] = []
        for finding in self.findings:
            if finding.rule in grouped:
                grouped[finding.rule].append(finding)
            else:
                unknown.append(finding)
        if unknown:
            stray = sorted({finding.rule for finding in unknown})
            warnings.warn(
                f"{len(unknown)} finding(s) from unregistered rule(s) "
                f"{', '.join(stray)} grouped under 'unknown'",
                RuntimeWarning,
                stacklevel=2,
            )
            grouped["unknown"] = unknown
        return grouped

    def by_severity(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def implicated_sites(self) -> set[str]:
        """Union of fault-site ids any finding implicates."""
        return {
            site_id for finding in self.findings for site_id in finding.site_ids
        }

    def site_weights(self) -> dict[str, float]:
        """Evidence weight per implicated site, max-normalized to (0, 1].

        Each rule spreads one unit of weight uniformly over the sites it
        implicates, so a selective rule (few sites) counts for more than
        a broad one, and a site named by several independent rules
        accumulates their shares.  This is the shape the Explorer's lint
        prior consumes: ground-truth defect sites concentrate evidence
        from the rare rules while benign log-and-continue noise is
        diluted across the whole system.
        """
        rule_sites: dict[str, set[str]] = {}
        for finding in self.findings:
            rule_sites.setdefault(finding.rule, set()).update(finding.site_ids)
        weights: dict[str, float] = {}
        for sites in rule_sites.values():
            if not sites:
                continue
            share = 1.0 / len(sites)
            for site_id in sites:
                weights[site_id] = weights.get(site_id, 0.0) + share
        top = max(weights.values(), default=0.0)
        if top > 0.0:
            weights = {site: weight / top for site, weight in weights.items()}
        return weights

    def min_severity(self, severity: str) -> "LintReport":
        floor = severity_rank(severity)
        return LintReport(
            package=self.package,
            rule_ids=self.rule_ids,
            findings=[
                finding
                for finding in self.findings
                if severity_rank(finding.severity) >= floor
            ],
            elapsed_seconds=self.elapsed_seconds,
        )

    # ---------------------------------------------------------------- renderers

    def to_text(self) -> str:
        counts = self.by_severity()
        summary = ", ".join(
            f"{counts[severity]} {severity}"
            for severity in ("error", "warning", "info")
            if severity in counts
        )
        lines = [
            f"{self.package}: {len(self.findings)} findings"
            + (f" ({summary})" if summary else "")
        ]
        for finding in self.findings:
            lines.append(
                f"{finding.severity:<7} {finding.rule:<20} "
                f"{finding.location} ({finding.function})"
            )
            lines.append(f"        {finding.message}")
            if finding.site_ids:
                lines.append(
                    "        sites: " + ", ".join(finding.site_ids)
                )
        return "\n".join(lines)

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(
            {
                "package": self.package,
                "rules": list(self.rule_ids),
                "finding_count": len(self.findings),
                "severity_counts": self.by_severity(),
                "findings": [finding.to_dict() for finding in self.findings],
            },
            indent=indent,
        )


def _finding_order(finding: Finding) -> tuple:
    return (
        -severity_rank(finding.severity),
        finding.file,
        finding.line,
        finding.rule,
    )


def run_lint(
    model: SystemModel,
    analysis: Optional[ExceptionAnalysis] = None,
    rules: Optional[Iterable[str]] = None,
    package: str = "",
) -> LintReport:
    """Run the rule catalog (or a subset) over an analyzed system."""
    started = time.perf_counter()
    catalog = registered_rules()
    if rules is None:
        selected = sorted(catalog)
    else:
        selected = []
        for rule_id in rules:
            if rule_id not in catalog:
                raise ValueError(
                    f"unknown lint rule {rule_id!r}; "
                    f"known: {', '.join(sorted(catalog))}"
                )
            selected.append(rule_id)
    context = LintContext(model, analysis)
    findings: list[Finding] = []
    for rule_id in selected:
        findings.extend(catalog[rule_id].check(context))
    findings.sort(key=_finding_order)
    return LintReport(
        package=package,
        rule_ids=tuple(selected),
        findings=findings,
        elapsed_seconds=time.perf_counter() - started,
    )


def lint_package(
    package_name: str, rules: Optional[Iterable[str]] = None
) -> LintReport:
    """Analyze an importable package and lint it in one step."""
    model = analyze_package(package_name)
    return run_lint(model, rules=rules, package=package_name)
