"""Static analysis: the Instrumenter's causal-reasoning side (§4).

Pipeline: ``analyze_package`` extracts AST facts into a ``SystemModel``;
``ExceptionAnalysis`` computes interprocedural exception flow;
``CausalGraphBuilder`` runs Algorithm 1 from a set of observables; and
``DistanceIndex`` precomputes the spatial distances the Explorer queries
each round.
"""

from .ast_facts import (
    AssignFact,
    CallFact,
    ConditionFact,
    EnvCallFact,
    FunctionFact,
    HandlerFact,
    LogFact,
    ModuleFacts,
    RaiseFact,
    TryFact,
    extract_module_facts,
)
from .causal import AnalysisTimings, CausalGraphBuilder, DistanceIndex
from .exceptions import ExceptionAnalysis, ThrowPoint
from .flow import (
    CrossEdge,
    FlowAnalysis,
    PropagationGraph,
    PropagationPath,
    build_propagation_graph,
    reachability_weights,
    task_root_closure,
)
from .lint import LintReport, lint_package, run_lint
from .rules import Finding, LintContext, registered_rules
from .model import (
    CausalGraph,
    Node,
    NodeKind,
    SOURCE_KINDS,
    SourceInfo,
    external_corruption_node,
    filter_candidates_by_dims,
    graph_fault_candidates,
)
from .system_model import SystemModel, analyze_package

__all__ = [
    "AnalysisTimings",
    "AssignFact",
    "CallFact",
    "CausalGraph",
    "CausalGraphBuilder",
    "ConditionFact",
    "CrossEdge",
    "DistanceIndex",
    "EnvCallFact",
    "ExceptionAnalysis",
    "Finding",
    "FlowAnalysis",
    "FunctionFact",
    "HandlerFact",
    "LintContext",
    "LintReport",
    "LogFact",
    "ModuleFacts",
    "Node",
    "NodeKind",
    "PropagationGraph",
    "PropagationPath",
    "RaiseFact",
    "SOURCE_KINDS",
    "SourceInfo",
    "SystemModel",
    "ThrowPoint",
    "TryFact",
    "analyze_package",
    "build_propagation_graph",
    "external_corruption_node",
    "extract_module_facts",
    "filter_candidates_by_dims",
    "graph_fault_candidates",
    "lint_package",
    "reachability_weights",
    "registered_rules",
    "run_lint",
    "task_root_closure",
]
