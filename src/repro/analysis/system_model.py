"""Aggregated static model of one mini system.

A :class:`SystemModel` merges the per-module facts of a system package and
provides the lookups every downstream analysis needs: name-based call
resolution, innermost enclosing condition / try / handler, slicing-style
"who writes this variable", and an exception subtype relation extended
with the system's own exception classes.
"""

from __future__ import annotations

import hashlib
import importlib
import pkgutil
import warnings
from typing import Iterable, Optional

from ..logs.sanitize import LogTemplate, TemplateMatcher
from ..sim import errors as sim_errors
from .ast_facts import (
    AssignFact,
    CallFact,
    ConditionFact,
    EnvCallFact,
    FunctionFact,
    HandlerFact,
    LogFact,
    ModuleFacts,
    RaiseFact,
    ReturnFact,
    TryFact,
    extract_module_facts,
)


class SystemModel:
    def __init__(self, modules: Iterable[ModuleFacts]) -> None:
        self.modules = list(modules)
        self.functions: list[FunctionFact] = []
        self.logs: list[LogFact] = []
        self.env_calls: list[EnvCallFact] = []
        self.raises: list[RaiseFact] = []
        self.calls: list[CallFact] = []
        self.trys: list[TryFact] = []
        self.conditions: list[ConditionFact] = []
        self.assigns: list[AssignFact] = []
        self.returns: list[ReturnFact] = []
        self._class_bases: dict[str, tuple[str, ...]] = {}
        for facts in self.modules:
            self.functions.extend(facts.functions)
            self.logs.extend(facts.logs)
            self.env_calls.extend(facts.env_calls)
            self.raises.extend(facts.raises)
            self.calls.extend(facts.calls)
            self.trys.extend(facts.trys)
            self.conditions.extend(facts.conditions)
            self.assigns.extend(facts.assigns)
            self.returns.extend(facts.returns)
            for cls in facts.classes:
                self._class_bases[cls.name] = cls.bases

        self._functions_by_name: dict[str, list[FunctionFact]] = {}
        for fn in self.functions:
            self._functions_by_name.setdefault(fn.name, []).append(fn)
        self._functions_by_qualname = {fn.qualname: fn for fn in self.functions}
        self._calls_by_callee: dict[str, list[CallFact]] = {}
        for call in self.calls:
            self._calls_by_callee.setdefault(call.callee, []).append(call)
        self._assigns_by_target: dict[str, list[AssignFact]] = {}
        for assign in self.assigns:
            for target in assign.targets:
                self._assigns_by_target.setdefault(target, []).append(assign)
        self._env_by_function: dict[str, list[EnvCallFact]] = {}
        for env_call in self.env_calls:
            self._env_by_function.setdefault(env_call.function, []).append(env_call)
        self._raises_by_function: dict[str, list[RaiseFact]] = {}
        for raise_fact in self.raises:
            self._raises_by_function.setdefault(raise_fact.function, []).append(
                raise_fact
            )
        self._calls_by_caller: dict[str, list[CallFact]] = {}
        for call in self.calls:
            self._calls_by_caller.setdefault(call.caller, []).append(call)
        self._trys_by_function: dict[str, list[TryFact]] = {}
        for try_fact in self.trys:
            self._trys_by_function.setdefault(try_fact.function, []).append(try_fact)
        self._returns_by_function: dict[str, list[ReturnFact]] = {}
        for return_fact in self.returns:
            self._returns_by_function.setdefault(return_fact.function, []).append(
                return_fact
            )

    # ------------------------------------------------------------------ lookups

    def functions_named(self, name: str) -> list[FunctionFact]:
        return self._functions_by_name.get(name, [])

    def function(self, qualname: str) -> Optional[FunctionFact]:
        return self._functions_by_qualname.get(qualname)

    def calls_to(self, name: str) -> list[CallFact]:
        return self._calls_by_callee.get(name, [])

    def calls_in(self, qualname: str) -> list[CallFact]:
        return self._calls_by_caller.get(qualname, [])

    def env_calls_in(self, qualname: str) -> list[EnvCallFact]:
        return self._env_by_function.get(qualname, [])

    def raises_in(self, qualname: str) -> list[RaiseFact]:
        return self._raises_by_function.get(qualname, [])

    def trys_in(self, qualname: str) -> list[TryFact]:
        return self._trys_by_function.get(qualname, [])

    def returns_in(self, qualname: str) -> list[ReturnFact]:
        return self._returns_by_function.get(qualname, [])

    def assigns_to(self, variable: str) -> list[AssignFact]:
        return self._assigns_by_target.get(variable, [])

    def enclosing_condition(
        self, file: str, line: int
    ) -> Optional[ConditionFact]:
        """Innermost if/while whose span contains ``line`` (not at its test)."""
        best: Optional[ConditionFact] = None
        for cond in self.conditions:
            if cond.file != file or cond.line == line:
                continue
            if cond.scope_start < line <= cond.scope_end:
                if best is None or (
                    cond.scope_end - cond.scope_start
                    < best.scope_end - best.scope_start
                ):
                    best = cond
        return best

    def prior_conditions(
        self, file: str, line: int, function: str
    ) -> list[ConditionFact]:
        """All branch dominators of a location.

        The innermost enclosing if/while, plus every *loop* in the same
        function that completes before the location: a statement after a
        ``while`` only executes once the loop condition turns false, so
        the loop condition dominates it (the Figure 1 ``waitForSafePoint``
        shape — the log after the wait loop depends on the loop's exit).
        """
        priors: list[ConditionFact] = []
        enclosing = self.enclosing_condition(file, line)
        if enclosing is not None:
            priors.append(enclosing)
        for cond in self.conditions:
            if (
                cond.is_loop
                and cond.file == file
                and cond.function == function
                and cond.scope_end < line
            ):
                priors.append(cond)
        return priors

    def enclosing_trys(self, qualname: str, line: int) -> list[TryFact]:
        """Trys of the function whose body covers ``line``, innermost first."""
        covering = [
            try_fact
            for try_fact in self._trys_by_function.get(qualname, [])
            if try_fact.covers(line)
        ]
        covering.sort(key=lambda t: t.body_end - t.body_start)
        return covering

    def handler_at(self, file: str, line: int) -> Optional[HandlerFact]:
        """Innermost except-handler whose body contains ``line``."""
        best: Optional[HandlerFact] = None
        for try_fact in self.trys:
            if try_fact.file != file:
                continue
            for handler in try_fact.handlers:
                if handler.body_start <= line <= handler.body_end:
                    if best is None or (
                        handler.body_end - handler.body_start
                        < best.body_end - best.body_start
                    ):
                        best = handler
        return best

    def handler_by_line(self, file: str, line: int) -> Optional[HandlerFact]:
        for try_fact in self.trys:
            if try_fact.file != file:
                continue
            for handler in try_fact.handlers:
                if handler.line == line:
                    return handler
        return None

    # ---------------------------------------------------------------- exceptions

    def is_subtype(self, thrown: str, caught: str) -> bool:
        """Whether an exception named ``thrown`` is caught by type ``caught``.

        Resolves through both the simulator's exception hierarchy and the
        system's own exception class definitions.
        """
        if thrown == caught or caught in ("Exception", "BaseException"):
            return True
        if thrown in sim_errors.EXCEPTION_TYPES and caught in sim_errors.EXCEPTION_TYPES:
            return sim_errors.is_subtype(thrown, caught)
        # Walk the system-defined class hierarchy upward from ``thrown``.
        seen: set[str] = set()
        frontier = [thrown]
        while frontier:
            name = frontier.pop()
            if name in seen:
                continue
            seen.add(name)
            if name == caught:
                return True
            if name in sim_errors.EXCEPTION_TYPES and caught in sim_errors.EXCEPTION_TYPES:
                if sim_errors.is_subtype(name, caught):
                    return True
            frontier.extend(self._class_bases.get(name, ()))
        return False

    def handler_catches(self, handler: HandlerFact, thrown: str) -> bool:
        return any(self.is_subtype(thrown, caught) for caught in handler.exceptions)

    # ---------------------------------------------------------------- templates

    def log_templates(self) -> list[LogTemplate]:
        return [
            LogTemplate(
                template_id=log.template_id,
                template=log.template,
                level=log.level,
                file=log.file,
                line=log.line,
                function=log.function,
            )
            for log in self.logs
        ]

    def template_matcher(self) -> TemplateMatcher:
        return TemplateMatcher(self.log_templates())

    def total_fault_candidates(self) -> int:
        """All static (site, exception) pairs in the system — Table 1 'Total'."""
        return sum(len(env_call.exception_types) for env_call in self.env_calls)


def analyze_package(
    package_name: str, addons: Iterable[str] = ()
) -> SystemModel:
    """Analyze every module of an importable package into a SystemModel.

    A package may declare ``ADDON_MODULES`` — optional components (extra
    daemons) that ship with the package but are only part of a deployment
    when its workload spawns them.  Those modules are excluded from the
    model unless named in ``addons``, so a case's static fault space
    covers exactly the code its deployment runs: baselines that sweep the
    whole model (FATE, random) are unaffected by add-ons that other cases
    deploy.
    """
    package = importlib.import_module(package_name)
    declared = frozenset(getattr(package, "ADDON_MODULES", ()))
    wanted = frozenset(addons)
    unknown = wanted - declared
    if unknown:
        raise ValueError(
            f"{package_name} does not declare addon module(s): "
            f"{', '.join(sorted(unknown))}"
        )
    skip = declared - wanted
    module_facts: list[ModuleFacts] = []
    paths = getattr(package, "__path__", None)
    if paths is None:
        facts = _facts_for_module(package_name)
        if facts is not None:
            module_facts.append(facts)
    else:
        for info in pkgutil.walk_packages(paths, prefix=package_name + "."):
            if not info.ispkg and info.name not in skip:
                facts = _facts_for_module(info.name)
                if facts is not None:
                    module_facts.append(facts)
    return SystemModel(module_facts)


#: module name -> (source sha256, extracted facts).  Repeated benchmark
#: runs re-analyze the same packages dozens of times; the hash key makes
#: the cache safe against on-disk edits between calls (a changed source
#: re-parses, an unchanged one is a dict lookup).
_FACTS_CACHE: dict[str, tuple[str, ModuleFacts]] = {}


def clear_facts_cache() -> None:
    _FACTS_CACHE.clear()


def _facts_for_module(module_name: str) -> Optional[ModuleFacts]:
    module = importlib.import_module(module_name)
    file_path = getattr(module, "__file__", None)
    if file_path is None:
        # Extension modules and namespace members have no parseable
        # source; skip them so packages containing them still analyze.
        warnings.warn(
            f"module {module_name} has no source file; skipping static facts",
            stacklevel=2,
        )
        return None
    with open(file_path, encoding="utf-8") as handle:
        source = handle.read()
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    cached = _FACTS_CACHE.get(module_name)
    if cached is not None and cached[0] == digest:
        return cached[1]
    facts = extract_module_facts(module_name, file_path, source)
    _FACTS_CACHE[module_name] = (digest, facts)
    return facts
