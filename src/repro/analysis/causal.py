"""Static causal graph construction (Algorithm 1, §4.1).

Starting from the location nodes of the relevant observables' logging
statements, we recursively add causally-prior nodes until reaching fault
sites (new-exception / external-exception nodes), producing a DAG-like
graph whose sources are fault candidates and whose sinks are observables.

The per-node ``CausallyPrior`` rules follow the paper:

* location  → enclosing condition, enclosing handler, invocation of the
  enclosing function;
* condition → the location rules, plus jumping-strategy slicing: every
  assignment (anywhere in the system) to a variable the test reads;
* invocation → the call sites of the invoked function (including executor
  submissions and task spawns);
* handler   → the throw points the handler catches (from the exception
  analysis); propagating points become internal-exception nodes whose
  priors continue into the callee, and a ``throw new`` inside a handler
  is downgraded to internal so the search keeps digging for the deeper
  root cause.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Iterable, Optional

from ..injection.corruptions import corruption_kinds_for_op
from ..injection.sites import CORRUPT_PREFIX
from .ast_facts import HandlerFact
from .exceptions import (
    KIND_ASYNC,
    KIND_CALL,
    KIND_EXTERNAL,
    KIND_NEW,
    KIND_RERAISE,
    ExceptionAnalysis,
    ThrowPoint,
)
from .model import (
    CausalGraph,
    Node,
    NodeKind,
    SOURCE_KINDS,
    condition_node,
    external_corruption_node,
    external_exception_node,
    handler_node,
    internal_exception_node,
    invocation_node,
    location_node,
    new_exception_node,
)
from .system_model import SystemModel


@dataclasses.dataclass
class AnalysisTimings:
    """Wall-clock breakdown mirroring Table 7's columns."""

    exception_seconds: float = 0.0
    slicing_seconds: float = 0.0
    chaining_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.exception_seconds + self.slicing_seconds + self.chaining_seconds


class CausalGraphBuilder:
    def __init__(
        self,
        model: SystemModel,
        analysis: Optional[ExceptionAnalysis] = None,
        fault_dims: str = "exceptions",
    ) -> None:
        self.model = model
        self.timings = AnalysisTimings()
        if analysis is None:
            analysis = ExceptionAnalysis(model)
        self.analysis = analysis
        self.timings.exception_seconds = analysis.elapsed_seconds
        #: Which fault dimensions to enumerate candidates for:
        #: ``exceptions`` (legacy, default), ``soft``, or ``all``.  The
        #: exception BFS always runs (it builds the graph structure); the
        #: soft pass below only attaches corruption sources when asked,
        #: so exception-only graphs are bit-for-bit unchanged.
        self.fault_dims = fault_dims

    # ---------------------------------------------------------------- building

    def build(self, observable_template_ids: Optional[Iterable[str]] = None) -> CausalGraph:
        """Run Algorithm 1 from the given observables (default: all logs)."""
        started = time.perf_counter()
        wanted = (
            set(observable_template_ids)
            if observable_template_ids is not None
            else None
        )
        graph = CausalGraph()
        queue: list[Node] = []
        for log in self.model.logs:
            if wanted is not None and log.template_id not in wanted:
                continue
            sink = location_node(
                log.file, log.line, log.function, detail=log.template_id
            )
            graph.mark_sink(log.template_id, sink)
            queue.append(sink)

        visited: set[str] = {node.node_id for node in queue}
        while queue:
            node = queue.pop()
            if node.kind in SOURCE_KINDS:
                continue
            for prior in self._causally_prior(node):
                graph.add_edge(prior, node)
                if prior.node_id not in visited:
                    visited.add(prior.node_id)
                    queue.append(prior)
        if self.fault_dims in ("soft", "all"):
            self._attach_corruption_sources(graph)
        self.timings.chaining_seconds = (
            time.perf_counter() - started - self.timings.slicing_seconds
        )
        return graph

    def _attach_corruption_sources(self, graph: CausalGraph) -> None:
        """Attach soft-fault sources (Data-Poisoning dimension).

        A corrupted return value flows into whatever the enclosing
        function computes *after* the env call, so every location or
        condition node of a function is causally posterior to the
        corruptible env calls at earlier-or-equal lines of that function.
        Interprocedural reach then comes for free: the exception BFS
        already chains those locations/conditions to the observables
        through slicing and invocation edges.
        """
        for node_id in sorted(graph.nodes):
            node = graph.nodes[node_id]
            if node.kind not in (NodeKind.LOCATION, NodeKind.CONDITION):
                continue
            if not node.function:
                continue
            for env_call in self.model.env_calls_in(node.function):
                if env_call.file != node.file or env_call.line > node.line:
                    continue
                for kind in corruption_kinds_for_op(env_call.op):
                    graph.add_edge(
                        external_corruption_node(
                            env_call.site_id, CORRUPT_PREFIX + kind
                        ),
                        node,
                    )

    # ----------------------------------------------------------- causally-prior

    def _causally_prior(self, node: Node) -> list[Node]:
        if node.kind is NodeKind.LOCATION:
            return self._location_priors(node.file, node.line, node.function)
        if node.kind is NodeKind.CONDITION:
            return self._condition_priors(node)
        if node.kind is NodeKind.INVOCATION:
            return self._invocation_priors(node)
        if node.kind is NodeKind.HANDLER:
            return self._handler_priors(node)
        if node.kind is NodeKind.INTERNAL_EXCEPTION:
            return self._internal_priors(node)
        return []

    def _location_priors(self, file: str, line: int, function: str) -> list[Node]:
        priors: list[Node] = []
        for condition in self.model.prior_conditions(file, line, function):
            priors.append(
                condition_node(condition.file, condition.line, condition.function)
            )
        handler = self.model.handler_at(file, line)
        if handler is not None:
            priors.append(self._handler_node(handler))
        if function and self.model.function(function) is not None:
            priors.append(invocation_node(function))
        return priors

    def _condition_priors(self, node: Node) -> list[Node]:
        priors = self._location_priors(node.file, node.line, node.function)
        started = time.perf_counter()
        condition = next(
            (
                cond
                for cond in self.model.conditions
                if cond.file == node.file and cond.line == node.line
            ),
            None,
        )
        if condition is not None:
            for variable in condition.variables:
                for assign in self.model.assigns_to(variable):
                    priors.append(
                        location_node(assign.file, assign.line, assign.function)
                    )
        self.timings.slicing_seconds += time.perf_counter() - started
        return priors

    def _invocation_priors(self, node: Node) -> list[Node]:
        function = self.model.function(node.detail)
        if function is None:
            return []
        return [
            location_node(call.file, call.line, call.caller)
            for call in self.model.calls_to(function.name)
        ]

    def _handler_priors(self, node: Node) -> list[Node]:
        handler = self.model.handler_by_line(node.file, node.line)
        if handler is None:
            return []
        return [
            self._point_node(point) for point in self.analysis.caught_by(handler)
        ]

    def _internal_priors(self, node: Node) -> list[Node]:
        kind, _, callee = node.detail.partition(":")
        if kind in (KIND_NEW, KIND_RERAISE):
            # Downgraded new-exception / re-raise: continue through the
            # handler the point lives in.
            handler = self.model.handler_at(node.file, node.line)
            if handler is None:
                return []
            return [self._handler_node(handler)]
        if kind == KIND_CALL:
            return [
                self._point_node(point)
                for fn in self.model.functions_named(callee)
                for point in self.analysis.escaping_points(
                    fn.qualname, exc_type=node.exception
                )
            ]
        if kind == KIND_ASYNC:
            return [
                self._point_node(point)
                for fn in self.model.functions_named(callee)
                for point in self.analysis.escaping_points(fn.qualname)
            ]
        return []

    # ------------------------------------------------------------ node factory

    def _handler_node(self, handler: HandlerFact) -> Node:
        return handler_node(
            handler.file,
            handler.line,
            handler.function,
            exception=",".join(handler.exceptions),
        )

    def _point_node(self, point: ThrowPoint) -> Node:
        if point.kind == KIND_EXTERNAL:
            return external_exception_node(point.site_id, point.exc_type)
        if point.kind == KIND_NEW:
            enclosing = self.model.handler_at(point.file, point.line)
            if enclosing is not None:
                # "if this new exception is thrown because of an external
                # exception, we downgrade it to an internal exception"
                node = internal_exception_node(
                    point.file, point.line, point.function, point.exc_type
                )
                return dataclasses.replace(node, detail=KIND_NEW)
            return new_exception_node(
                point.file, point.line, point.function, point.exc_type
            )
        node = internal_exception_node(
            point.file, point.line, point.function, point.exc_type
        )
        detail = point.kind if not point.callee else f"{point.kind}:{point.callee}"
        return dataclasses.replace(node, detail=detail)


class DistanceIndex:
    """Precomputed spatial distances L_{i,k} (the §7 optimization).

    Maps each observable template id to a {node_id: hops-to-sink} table; a
    missing entry means the fault cannot cause that observable.
    """

    def __init__(self, graph: CausalGraph) -> None:
        self.graph = graph
        self._per_sink: dict[str, dict[str, int]] = {
            template_id: graph.distances_to_sink(sink_node_id)
            for template_id, sink_node_id in graph.sinks.items()
        }

    def distance(self, source_node_id: str, template_id: str) -> Optional[int]:
        table = self._per_sink.get(template_id)
        if table is None:
            return None
        return table.get(source_node_id)

    def observables_reachable_from(self, source_node_id: str) -> dict[str, int]:
        """template id -> L for every observable this source can cause."""
        out: dict[str, int] = {}
        for template_id, table in self._per_sink.items():
            distance = table.get(source_node_id)
            if distance is not None:
                out[template_id] = distance
        return out
