"""Shared infrastructure for the fault-handling lint rules.

A rule is a function from a :class:`LintContext` (the system model plus
the interprocedural exception analysis) to a list of :class:`Finding`
objects.  Rules register themselves with the :func:`rule` decorator; the
driver in :mod:`repro.analysis.lint` runs every registered rule (or a
selected subset) and aggregates the findings into a report.

The context carries the span queries every rule needs — "which facts lie
inside this handler body", "which env calls does this handler guard",
"which fault sites does this handler catch on any interprocedural path" —
so individual rules stay small and declarative.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Optional, TypeVar

from ..ast_facts import (
    AssignFact,
    CallFact,
    EnvCallFact,
    HandlerFact,
    LogFact,
    RaiseFact,
    ReturnFact,
    TryFact,
)
from ..exceptions import (
    ExceptionAnalysis,
    KIND_ASYNC,
    KIND_CALL,
    KIND_EXTERNAL,
    ThrowPoint,
)
from ..system_model import SystemModel

#: Severity order, least to most severe.
SEVERITIES = ("info", "warning", "error")

#: Callee names whose invocation inside a handler escalates the fault
#: into a node/process shutdown (the abort-on-handled shape).
ABORT_CALLEES = frozenset(
    {"abort", "shutdown", "halt", "crash", "terminate", "exit", "fail"}
)

#: Callee names that are pure pacing, not recovery work.
BENIGN_CALLEES = frozenset({"sleep", "jitter"})

#: Catch types so wide they also trap typed simulator faults the code
#: never meant to handle.
BROAD_TYPES = frozenset({"Exception", "BaseException", "SimException"})

#: Log levels that signal the handler considers the fault fatal.
SEVERE_LOG_LEVELS = frozenset({"ERROR", "FATAL"})


def severity_rank(severity: str) -> int:
    return SEVERITIES.index(severity)


@dataclasses.dataclass(frozen=True)
class Finding:
    """One structured lint finding."""

    rule: str
    severity: str            # "info" | "warning" | "error"
    file: str
    line: int
    function: str            # enclosing function qualname
    message: str
    #: Fault-site ids implicated by the finding (used by the Explorer's
    #: lint prior and by the ground-truth validation benchmark).
    site_ids: tuple[str, ...] = ()
    exception: str = ""      # primary exception type, "" when several

    @property
    def location(self) -> str:
        return f"{self.file}:{self.line}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "file": self.file,
            "line": self.line,
            "function": self.function,
            "message": self.message,
            "site_ids": list(self.site_ids),
            "exception": self.exception,
        }


RuleFn = Callable[["LintContext"], list[Finding]]


@dataclasses.dataclass(frozen=True)
class RuleInfo:
    rule_id: str
    summary: str
    check: RuleFn


_REGISTRY: dict[str, RuleInfo] = {}


def rule(rule_id: str, summary: str) -> Callable[[RuleFn], RuleFn]:
    """Register a rule function under a stable rule id."""

    def decorate(fn: RuleFn) -> RuleFn:
        if rule_id in _REGISTRY:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        _REGISTRY[rule_id] = RuleInfo(rule_id, summary, fn)
        return fn

    return decorate


def registered_rules() -> dict[str, RuleInfo]:
    return dict(_REGISTRY)


_FactT = TypeVar("_FactT")


def _in_span(
    facts: Iterable[_FactT], file: str, start: int, end: int
) -> list[_FactT]:
    return [
        fact
        for fact in facts
        if fact.file == file and start <= fact.line <= end
    ]


class LintContext:
    """Model + exception analysis plus the span queries rules share."""

    def __init__(
        self, model: SystemModel, analysis: Optional[ExceptionAnalysis] = None
    ) -> None:
        self.model = model
        self.analysis = analysis if analysis is not None else ExceptionAnalysis(model)

    # ------------------------------------------------------------ span queries

    def calls_in_span(self, file: str, start: int, end: int) -> list[CallFact]:
        return _in_span(self.model.calls, file, start, end)

    def logs_in_span(self, file: str, start: int, end: int) -> list[LogFact]:
        return _in_span(self.model.logs, file, start, end)

    def raises_in_span(self, file: str, start: int, end: int) -> list[RaiseFact]:
        return _in_span(self.model.raises, file, start, end)

    def assigns_in_span(self, file: str, start: int, end: int) -> list[AssignFact]:
        return _in_span(self.model.assigns, file, start, end)

    def returns_in_span(self, file: str, start: int, end: int) -> list[ReturnFact]:
        return _in_span(self.model.returns, file, start, end)

    def env_calls_in_span(
        self, file: str, start: int, end: int
    ) -> list[EnvCallFact]:
        return _in_span(self.model.env_calls, file, start, end)

    # --------------------------------------------------------- handler queries

    def handler_span(self, handler: HandlerFact) -> tuple[str, int, int]:
        return handler.file, handler.body_start, handler.body_end

    def try_env_calls(self, try_fact: TryFact) -> list[EnvCallFact]:
        """Env calls lexically inside the try body."""
        return [
            env_call
            for env_call in _in_span(
                self.model.env_calls,
                try_fact.file,
                try_fact.body_start,
                try_fact.body_end,
            )
            if env_call.function == try_fact.function
        ]

    def guarded_env_calls(
        self, try_fact: TryFact, handler: HandlerFact
    ) -> list[EnvCallFact]:
        """Env calls in the try body whose fault types this handler catches."""
        return [
            env_call
            for env_call in self.try_env_calls(try_fact)
            if any(
                self.model.handler_catches(handler, exc_type)
                for exc_type in env_call.exception_types
            )
        ]

    def handler_is_tolerant(self, handler: HandlerFact) -> bool:
        """Whether the handler absorbs the fault and carries on."""
        return self.handler_escalation(handler) is None

    def handler_escalation(self, handler: HandlerFact) -> Optional[str]:
        """How the handler escalates the fault, or ``None`` if it absorbs it.

        Escalations: calling an abort-family callee, re-raising, or
        logging at ERROR/FATAL severity and bailing out of the function —
        the give-up-and-return shape treats the fault as fatal even
        though control returns normally.
        """
        span = self.handler_span(handler)
        aborts = [
            call
            for call in self.calls_in_span(*span)
            if call.callee in ABORT_CALLEES
        ]
        if aborts:
            return f"aborts via {aborts[0].callee}()"
        raises = self.raises_in_span(*span)
        if raises:
            wrapped = raises[0].exception or "the caught exception"
            return f"re-raises as {wrapped}"
        severe = [
            log
            for log in self.logs_in_span(*span)
            if log.level in SEVERE_LOG_LEVELS
        ]
        if severe and self.returns_in_span(*span):
            return f"logs at {severe[0].level} and gives up (returns)"
        return None

    def handler_guarded_sites(
        self, try_fact: TryFact, handler: HandlerFact
    ) -> tuple[str, ...]:
        """Direct plus interprocedural fault sites this handler guards."""
        sites = {
            env_call.site_id: None
            for env_call in self.guarded_env_calls(try_fact, handler)
        }
        for site_id in self.handler_site_ids(handler):
            sites.setdefault(site_id, None)
        return tuple(sites)

    def handler_site_ids(self, handler: HandlerFact) -> tuple[str, ...]:
        """Injectable fault sites this handler catches, interprocedurally.

        Direct external throw points contribute their own site; call and
        async points are expanded through the callee's escaping points to
        the underlying env-boundary sites.
        """
        sites: dict[str, None] = {}
        for point in self.analysis.caught.get((handler.file, handler.line), []):
            for site_id in self._expand_point(point, set()):
                sites.setdefault(site_id, None)
        return tuple(sites)

    def _expand_point(
        self, point: ThrowPoint, seen: set[tuple[str, str]]
    ) -> list[str]:
        if point.kind == KIND_EXTERNAL:
            return [point.site_id]
        if point.kind not in (KIND_CALL, KIND_ASYNC):
            return []
        sites: list[str] = []
        for callee in self.model.functions_named(point.callee):
            key = (callee.qualname, point.exc_type)
            if key in seen:
                continue
            seen.add(key)
            for escaping in self.analysis.escaping.get(callee.qualname, []):
                if point.kind == KIND_CALL and escaping.exc_type != point.exc_type:
                    continue
                sites.extend(self._expand_point(escaping, seen))
        return sites

    # ----------------------------------------------------- escape propagation

    def escapes_to_top(self, env_call: EnvCallFact, exc_type: str) -> bool:
        """Whether a fault at this env call can crash a task uncaught.

        True when the throw point escapes its own function and, following
        the synchronous call graph upward, some chain of callers lets it
        escape to a task entry (a spawned generator or an uncalled entry
        function).  Executor submissions stop raw propagation — the pool
        converts the fault into an ``ExecutionException`` on the future.
        """
        escaping = self.analysis.escaping.get(env_call.function, [])
        if not any(
            point.kind == KIND_EXTERNAL
            and point.site_id == env_call.site_id
            and point.exc_type == exc_type
            for point in escaping
        ):
            return False
        return self._escapes_from(env_call.function, exc_type, set())

    def _escapes_from(
        self, qualname: str, exc_type: str, seen: set[tuple[str, str]]
    ) -> bool:
        key = (qualname, exc_type)
        if key in seen:
            return False
        seen.add(key)
        fn = self.model.function(qualname)
        if fn is None:
            return True  # module-level code: nothing above it
        callers = [
            call for call in self.model.calls_to(fn.name) if not call.is_submit
        ]
        if not callers:
            return True  # entry point: the escape reaches the task top
        for call in callers:
            if call.is_spawn:
                return True  # the spawned task dies of the escape
            propagated = any(
                point.kind == KIND_CALL
                and point.callee == fn.name
                and point.exc_type == exc_type
                and point.line == call.line
                for point in self.analysis.escaping.get(call.caller, [])
            )
            if propagated and self._escapes_from(call.caller, exc_type, seen):
                return True
        return False

    # ------------------------------------------------------- flow-shape checks

    def try_end(self, try_fact: TryFact) -> int:
        ends = [try_fact.body_end]
        ends.extend(handler.body_end for handler in try_fact.handlers)
        return max(ends)

    def continues_after(self, try_fact: TryFact) -> bool:
        """Whether the enclosing function keeps working past the try.

        True when state mutation, env calls, or further calls follow the
        try statement in the same function.  A try that merely sits at
        the tail of a loop body does not count: re-entering the loop is
        the retry shape, which the unbounded-retry rule judges instead.
        """
        fn = self.model.function(try_fact.function)
        if fn is None:
            return False
        start = self.try_end(try_fact) + 1
        end = fn.end_line
        return bool(
            self.assigns_in_span(try_fact.file, start, end)
            or self.env_calls_in_span(try_fact.file, start, end)
            or self.calls_in_span(try_fact.file, start, end)
        )

    def in_loop(self, try_fact: TryFact) -> bool:
        return any(
            cond.is_loop
            and cond.file == try_fact.file
            and cond.function == try_fact.function
            and cond.scope_start < try_fact.body_start
            and cond.scope_end >= try_fact.body_end
            for cond in self.model.conditions
        )
