"""Concurrency rule pack: lock ordering and cross-task shared state.

Three rules built on the flow pass's cross-thread edges and the
owner-tracked call facts (``CallFact.owner``):

* ``lock-order-inversion`` — two locks acquired in opposite orders on
  two code paths.  Under concurrent execution the paths can deadlock
  (the classic ABBA shape; HBASE-22539's split-WAL hang).
* ``await-under-lock`` — blocking on a queue, future, or task join
  while holding a lock.  If the unblocking party needs the same lock,
  the system wedges; even when it does not, the lock's hold time is
  unbounded.
* ``handler-unsync-write`` — a handler path mutates a variable that a
  function on a *different task* branches on, with no lock held.  The
  recovery action races with the reader: the paper's minicluster bugs
  where a handler flips a flag the main loop is concurrently testing.

Lock identity is the receiver name of ``acquire()``/``release()`` calls
(``self.wal_lock.acquire()`` -> ``wal_lock``), so the matching stays
name-based and conservative like the rest of the catalog.  None of the
rules implicate fault sites (``site_ids`` is always empty): deadlocks
and races are not injectable env faults, so these findings inform the
human report without perturbing the Explorer's lint prior.
"""

from __future__ import annotations

from ..flow import FlowAnalysis, task_root_closure
from .base import Finding, LintContext, rule

RELEASE_CALLEES = frozenset({"release", "force_release"})

#: Callee names that block the current task until another task acts.
BLOCKING_CALLEES = frozenset({"get", "join", "wait", "await_result", "result"})


def _lock_calls(ctx: LintContext, qualname: str):
    """This function's acquire/release calls with a known lock name."""
    return sorted(
        (
            call
            for call in ctx.model.calls_in(qualname)
            if call.owner
            and (call.callee == "acquire" or call.callee in RELEASE_CALLEES)
        ),
        key=lambda call: call.line,
    )


def _held_before(lock_calls, line: int) -> list[str]:
    """Lock names held just before ``line``, in acquisition order."""
    held: list[str] = []
    for call in lock_calls:
        if call.line >= line:
            break
        if call.callee == "acquire":
            if call.owner not in held:
                held.append(call.owner)
        elif call.owner in held:
            held.remove(call.owner)
    return held


def _queue_owners(ctx: LintContext) -> frozenset[str]:
    """Receiver names that are fed by a ``put`` somewhere in the package.

    Used to tell a queue's blocking ``get`` apart from a dict lookup:
    only receivers something enqueues into count.
    """
    return frozenset(
        call.owner
        for call in ctx.model.calls
        if call.owner and call.callee in ("put", "put_nowait")
    )


@rule(
    "lock-order-inversion",
    "two locks acquired in opposite orders on different code paths",
)
def check_lock_order(ctx: LintContext) -> list[Finding]:
    # Acquisition-order edges: holding A while acquiring B records A->B.
    edges: dict[tuple[str, str], list] = {}
    for fn in ctx.model.functions:
        lock_calls = _lock_calls(ctx, fn.qualname)
        for call in lock_calls:
            if call.callee != "acquire":
                continue
            for held in _held_before(lock_calls, call.line):
                if held != call.owner:
                    edges.setdefault((held, call.owner), []).append(call)
    findings: list[Finding] = []
    for (first, second), acquires in sorted(edges.items()):
        if (second, first) not in edges:
            continue
        for call in acquires:
            findings.append(
                Finding(
                    rule="lock-order-inversion",
                    severity="error",
                    file=call.file,
                    line=call.line,
                    function=call.caller,
                    message=(
                        f"acquires {second!r} while holding {first!r}, but "
                        f"another path acquires them in the opposite order; "
                        f"concurrent execution can deadlock"
                    ),
                )
            )
    return findings


@rule(
    "await-under-lock",
    "blocking on a queue/future/join while holding a lock",
)
def check_await_under_lock(ctx: LintContext) -> list[Finding]:
    queue_owners = _queue_owners(ctx)
    findings: list[Finding] = []
    for fn in ctx.model.functions:
        lock_calls = _lock_calls(ctx, fn.qualname)
        if not any(call.callee == "acquire" for call in lock_calls):
            continue
        for call in sorted(ctx.model.calls_in(fn.qualname), key=lambda c: c.line):
            if call.callee not in BLOCKING_CALLEES:
                continue
            # A bare .get() only blocks when the receiver is a queue.
            if call.callee == "get" and call.owner not in queue_owners:
                continue
            held = _held_before(lock_calls, call.line)
            if not held:
                continue
            receiver = f"{call.owner}." if call.owner else ""
            findings.append(
                Finding(
                    rule="await-under-lock",
                    severity="error",
                    file=call.file,
                    line=call.line,
                    function=call.caller,
                    message=(
                        f"blocks on {receiver}{call.callee}() while holding "
                        f"lock(s) {', '.join(repr(name) for name in held)}; "
                        f"the unblocking task may need the same lock"
                    ),
                )
            )
    return findings


@rule(
    "handler-unsync-write",
    "handler path writes shared state another task reads, without a lock",
)
def check_handler_unsync_write(ctx: LintContext) -> list[Finding]:
    model = ctx.model
    graph = FlowAnalysis(model).build()
    closures = task_root_closure(model, graph)
    # function qualname -> the task roots it can run under.
    roots_of: dict[str, set[str]] = {}
    for root, members in closures.items():
        for member in members:
            roots_of.setdefault(member, set()).add(root)

    def concurrent(first: str, second: str) -> bool:
        """Can the two functions execute on different tasks?"""
        first_roots = roots_of.get(first, set())
        second_roots = roots_of.get(second, set())
        if first_roots and second_roots:
            return bool(
                (first_roots | second_roots) - (first_roots & second_roots)
            ) or len(first_roots & second_roots) > 1
        # One side under a spawned task, the other outside every task
        # closure (e.g. the workload's main loop): still concurrent.
        return bool(first_roots) != bool(second_roots)

    # Variables some function branches on, per function.
    condition_readers: dict[str, set[str]] = {}
    for condition in model.conditions:
        for variable in condition.variables:
            condition_readers.setdefault(variable, set()).add(condition.function)

    findings: list[Finding] = []
    for try_fact in model.trys:
        for handler in try_fact.handlers:
            lock_calls = _lock_calls(ctx, handler.function)
            for assign in ctx.assigns_in_span(*ctx.handler_span(handler)):
                if assign.function != handler.function:
                    continue
                if _held_before(lock_calls, assign.line):
                    continue
                for variable in assign.targets:
                    readers = condition_readers.get(variable, set())
                    racing = sorted(
                        reader
                        for reader in readers
                        if reader != handler.function
                        and concurrent(handler.function, reader)
                    )
                    if not racing:
                        continue
                    findings.append(
                        Finding(
                            rule="handler-unsync-write",
                            severity="warning",
                            file=assign.file,
                            line=assign.line,
                            function=handler.function,
                            message=(
                                f"handler writes {variable!r} without a lock "
                                f"while {racing[0]} (on another task) branches "
                                f"on it; the recovery races with the reader"
                            ),
                        )
                    )
    return findings
