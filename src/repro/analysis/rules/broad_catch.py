"""Rule: over-broad catch around an env boundary.

``except Exception`` (or the simulator's root ``SimException``) guarding
an env call traps every typed fault the boundary can raise — including
ones the handler was never written for, which then take the generic
recovery path.  A broad catch that immediately re-raises is exempt: it
is the log-then-rethrow idiom, not suppression.
"""

from __future__ import annotations

from .base import BROAD_TYPES, Finding, LintContext, rule


@rule(
    "over-broad-catch",
    "except Exception/SimException guards a typed env-boundary call",
)
def check(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for try_fact in ctx.model.trys:
        for handler in try_fact.handlers:
            broad = sorted(set(handler.exceptions) & BROAD_TYPES)
            if not broad:
                continue
            env_calls = ctx.try_env_calls(try_fact)
            if not env_calls:
                continue
            span = ctx.handler_span(handler)
            if any(
                raise_fact.exception == ""
                for raise_fact in ctx.raises_in_span(*span)
            ):
                continue  # bare re-raise: broad catch only for logging
            typed = sorted(
                {
                    exc_type
                    for env_call in env_calls
                    for exc_type in env_call.exception_types
                }
            )
            ops = ", ".join(sorted({env_call.op for env_call in env_calls}))
            sites = {env_call.site_id: None for env_call in env_calls}
            for site_id in ctx.handler_site_ids(handler):
                sites.setdefault(site_id, None)
            findings.append(
                Finding(
                    rule="over-broad-catch",
                    severity="warning",
                    file=handler.file,
                    line=handler.line,
                    function=handler.function,
                    message=(
                        f"except {', '.join(broad)} guards {ops} which raises "
                        f"typed faults ({', '.join(typed)}); narrow the catch"
                    ),
                    site_ids=tuple(sites),
                    exception=broad[0],
                )
            )
    return findings
