"""Rule: swallowed exception (the PyResBugs "silent pass" shape).

A handler guarding an env-boundary call that does no recovery work —
its body is ``pass`` or log-only, or it papers over the fault with a
sentinel ``return`` — while the enclosing function (or its caller, via
the sentinel) continues as if the operation had succeeded.  The ZK-3006
epoch load and the CASSANDRA-17663 stream task are this shape.
"""

from __future__ import annotations

from .base import (
    ABORT_CALLEES,
    BENIGN_CALLEES,
    Finding,
    LintContext,
    rule,
)


@rule(
    "swallowed-exception",
    "handler guarding an env call does pass/log-only or returns a sentinel",
)
def check(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for try_fact in ctx.model.trys:
        for handler in try_fact.handlers:
            guarded = ctx.guarded_env_calls(try_fact, handler)
            if not guarded:
                continue
            span = ctx.handler_span(handler)
            if ctx.raises_in_span(*span):
                continue
            calls = [
                call
                for call in ctx.calls_in_span(*span)
                if call.callee not in BENIGN_CALLEES
            ]
            if any(call.callee in ABORT_CALLEES for call in calls):
                continue
            sentinels = [
                ret for ret in ctx.returns_in_span(*span) if ret.is_sentinel
            ]
            inert = not calls and not ctx.assigns_in_span(*span)
            if sentinels:
                shape = f"returns sentinel {sentinels[0].value_repr}"
            elif inert and ctx.continues_after(try_fact):
                shape = (
                    "is pass-only"
                    if not ctx.logs_in_span(*span)
                    else "only logs"
                )
                shape += " and the function continues"
            else:
                continue
            caught = ", ".join(handler.exceptions)
            ops = ", ".join(
                sorted({env_call.op for env_call in guarded})
            )
            sites = {env_call.site_id: None for env_call in guarded}
            for site_id in ctx.handler_site_ids(handler):
                sites.setdefault(site_id, None)
            findings.append(
                Finding(
                    rule="swallowed-exception",
                    severity="error",
                    file=handler.file,
                    line=handler.line,
                    function=handler.function,
                    message=(
                        f"except {caught} guarding {ops} {shape}; "
                        f"the fault is silently absorbed"
                    ),
                    site_ids=tuple(sites),
                    exception=handler.exceptions[0] if handler.exceptions else "",
                )
            )
    return findings
