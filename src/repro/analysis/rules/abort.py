"""Rule: abort on a fault a sibling path tolerates.

A handler that escalates a caught env-boundary fault — into a node
abort, a wrap-and-re-raise, or a "severe unrecoverable error" log
followed by giving up — while some other handler in the same system
absorbs the very same exception type: the system has decided the fault
is survivable elsewhere, so treating it as fatal here is suspicious.
The ZK-2247 "severe unrecoverable error" and the HB-16144 claim-queue
abort are this shape.  The fault may reach the handler through a call
chain, so the guarded sites are resolved interprocedurally via the
exception analysis.
"""

from __future__ import annotations

from ..exceptions import KIND_ASYNC, KIND_CALL, KIND_EXTERNAL
from .base import Finding, HandlerFact, LintContext, rule

_ENV_KINDS = (KIND_EXTERNAL, KIND_CALL, KIND_ASYNC)


@rule(
    "abort-on-handled",
    "handler escalates a fault another handler tolerates",
)
def check(ctx: LintContext) -> list[Finding]:
    # Handlers that absorb faults, for the sibling-tolerance check.
    absorbing: list[HandlerFact] = [
        handler
        for try_fact in ctx.model.trys
        for handler in try_fact.handlers
        if ctx.handler_escalation(handler) is None
    ]

    findings: list[Finding] = []
    for try_fact in ctx.model.trys:
        for handler in try_fact.handlers:
            action = ctx.handler_escalation(handler)
            if action is None:
                continue
            sites = ctx.handler_guarded_sites(try_fact, handler)
            if not sites:
                continue  # no env-boundary fault reaches this handler
            caught = {
                exc_type
                for env_call in ctx.guarded_env_calls(try_fact, handler)
                for exc_type in env_call.exception_types
                if ctx.model.handler_catches(handler, exc_type)
            }
            caught.update(
                point.exc_type
                for point in ctx.analysis.caught.get(
                    (handler.file, handler.line), []
                )
                if point.kind in _ENV_KINDS
            )
            tolerated = sorted(
                exc_type
                for exc_type in caught
                if any(
                    other is not handler
                    and ctx.model.handler_catches(other, exc_type)
                    for other in absorbing
                )
            )
            if not tolerated:
                continue
            findings.append(
                Finding(
                    rule="abort-on-handled",
                    severity="warning",
                    file=handler.file,
                    line=handler.line,
                    function=handler.function,
                    message=(
                        f"handler {action} for {', '.join(tolerated)}, which "
                        f"a sibling handler elsewhere tolerates"
                    ),
                    site_ids=sites,
                    exception=tolerated[0],
                )
            )
    return findings
