"""Rule: unbounded retry of an env-boundary call.

A ``while True`` loop re-invoking an env call whose failures a handler
inside the loop absorbs retries forever: there is no attempt cap (the
loop condition reads no variable that could encode one).  Tight spins —
no sleep in the handler — are errors; paced retries are still unbounded
but only warned.
"""

from __future__ import annotations

from .base import BENIGN_CALLEES, Finding, LintContext, rule


@rule(
    "unbounded-retry",
    "while-True loop retries an env call with no attempt cap",
)
def check(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for cond in ctx.model.conditions:
        if not cond.is_loop or cond.variables:
            continue  # not a loop, or the condition can encode a cap
        loop_env_calls = [
            env_call
            for env_call in ctx.env_calls_in_span(
                cond.file, cond.scope_start, cond.scope_end
            )
            if env_call.function == cond.function
        ]
        if not loop_env_calls:
            continue
        for try_fact in ctx.model.trys:
            if (
                try_fact.function != cond.function
                or try_fact.file != cond.file
                or try_fact.body_start <= cond.scope_start
                or try_fact.body_end > cond.scope_end
            ):
                continue
            for handler in try_fact.handlers:
                guarded = [
                    env_call
                    for env_call in ctx.guarded_env_calls(try_fact, handler)
                    if env_call in loop_env_calls
                ]
                if not guarded or not ctx.handler_is_tolerant(handler):
                    continue
                span = ctx.handler_span(handler)
                backoff = any(
                    call.callee in BENIGN_CALLEES
                    for call in ctx.calls_in_span(*span)
                )
                ops = ", ".join(sorted({env.op for env in guarded}))
                sites = tuple({env.site_id: None for env in guarded})
                findings.append(
                    Finding(
                        rule="unbounded-retry",
                        severity="warning" if backoff else "error",
                        file=handler.file,
                        line=handler.line,
                        function=handler.function,
                        message=(
                            f"while-True loop retries {ops} forever on "
                            f"{', '.join(handler.exceptions)}"
                            + (
                                " (paced, but no attempt cap)"
                                if backoff
                                else " with no backoff and no attempt cap"
                            )
                        ),
                        site_ids=sites,
                        exception=(
                            handler.exceptions[0] if handler.exceptions else ""
                        ),
                    )
                )
    return findings
