"""Rule: handler parks the task on a wait after catching an env fault.

A handler that absorbs an env-boundary fault and then blocks on a
condition-variable ``wait`` (or a ``join``) can hang forever: the
notifier is often the very path that just faulted, so nobody ever
signals — the KAFKA-9374 connector start pins its only worker thread
exactly this way.
"""

from __future__ import annotations

from .base import Finding, LintContext, rule

#: Callee names that park the current task until someone else acts.
WAIT_CALLEES = frozenset({"wait", "wait_for", "join"})


@rule(
    "blocking-handler",
    "handler blocks on a wait/join after catching an env fault",
)
def check(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for try_fact in ctx.model.trys:
        for handler in try_fact.handlers:
            sites = ctx.handler_guarded_sites(try_fact, handler)
            if not sites:
                continue
            span = ctx.handler_span(handler)
            waits = [
                call
                for call in ctx.calls_in_span(*span)
                if call.callee in WAIT_CALLEES
            ]
            if not waits:
                continue
            caught = ", ".join(handler.exceptions)
            findings.append(
                Finding(
                    rule="blocking-handler",
                    severity="error",
                    file=handler.file,
                    line=handler.line,
                    function=handler.function,
                    message=(
                        f"except {caught} blocks on {waits[0].callee}() "
                        f"(line {waits[0].line}); if the notifier is the "
                        f"faulted path the task hangs forever"
                    ),
                    site_ids=sites,
                    exception=handler.exceptions[0] if handler.exceptions else "",
                )
            )
    return findings
