"""Rule: handler sets a latch that is never cleared on recovery.

A handler that flips a flag which conditions *elsewhere* read, with no
later statement in the same function ever resetting it, poisons every
future decision that consults the flag — even when the guarded
operation is retried successfully.  The HB-19608 procedure-executor
latch refuses healthy procedures this way.
"""

from __future__ import annotations

from .base import Finding, LintContext, rule


@rule(
    "sticky-latch",
    "handler sets a flag read elsewhere and never cleared afterwards",
)
def check(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for try_fact in ctx.model.trys:
        for handler in try_fact.handlers:
            sites = ctx.handler_guarded_sites(try_fact, handler)
            if not sites:
                continue
            span = ctx.handler_span(handler)
            flagged: list[tuple[str, str, int]] = []
            for assign in ctx.assigns_in_span(*span):
                for target in assign.targets:
                    readers = [
                        cond
                        for cond in ctx.model.conditions
                        if target in cond.variables
                        and cond.function != handler.function
                    ]
                    if not readers:
                        continue
                    cleared_later = any(
                        later.file == handler.file
                        and later.function == handler.function
                        and later.line > handler.body_end
                        and target in later.targets
                        for later in ctx.model.assigns
                    )
                    if cleared_later:
                        continue
                    reader = readers[0]
                    flagged.append((target, reader.function, reader.line))
            if not flagged:
                continue
            target, reader_fn, reader_line = flagged[0]
            findings.append(
                Finding(
                    rule="sticky-latch",
                    severity="warning",
                    file=handler.file,
                    line=handler.line,
                    function=handler.function,
                    message=(
                        f"handler sets {target!r}, which {reader_fn} reads "
                        f"(line {reader_line}), and nothing later in "
                        f"{handler.function} clears it; the latch outlives "
                        f"recovery"
                    ),
                    site_ids=sites,
                    exception=handler.exceptions[0] if handler.exceptions else "",
                )
            )
    return findings
