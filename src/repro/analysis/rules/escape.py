"""Rule: env-boundary fault that no handler catches on any path.

Reuses the interprocedural exception analysis: a fault type thrown at
an env call that escapes its function and then — following synchronous
callers upward — reaches a task entry uncaught will crash the task (the
ZK-4203 listener death).  Executor submissions are not escapes (the pool
converts the fault into an ``ExecutionException`` on the future).
"""

from __future__ import annotations

from .base import Finding, LintContext, rule


@rule(
    "unhandled-escape",
    "env-call fault escapes every enclosing handler to a task top",
)
def check(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for env_call in ctx.model.env_calls:
        escaped = [
            exc_type
            for exc_type in env_call.exception_types
            if ctx.escapes_to_top(env_call, exc_type)
        ]
        if not escaped:
            continue
        findings.append(
            Finding(
                rule="unhandled-escape",
                severity="error",
                file=env_call.file,
                line=env_call.line,
                function=env_call.function,
                message=(
                    f"{', '.join(escaped)} from {env_call.op} is caught by "
                    f"no handler on any interprocedural path; a fault here "
                    f"kills the task"
                ),
                site_ids=(env_call.site_id,),
                exception=escaped[0],
            )
        )
    return findings
