"""Rule: env-boundary call while a lock is held.

An env call between an ``acquire()`` and the matching ``release()`` in
the same function means a fault at the boundary can exit the function
with the lock still held — the CASSANDRA-17663 shared-channel-proxy
leak.  Matching is name-based (any ``acquire``/``release`` callee), so
it covers both :mod:`repro.sim.sync` locks and system-defined proxies.
"""

from __future__ import annotations

from .base import Finding, LintContext, rule

RELEASE_CALLEES = frozenset({"release", "force_release"})


@rule(
    "lock-across-boundary",
    "env call made between acquire() and release()",
)
def check(ctx: LintContext) -> list[Finding]:
    findings: list[Finding] = []
    for fn in ctx.model.functions:
        calls = ctx.model.calls_in(fn.qualname)
        acquires = sorted(
            (call for call in calls if call.callee == "acquire"),
            key=lambda call: call.line,
        )
        if not acquires:
            continue
        release_lines = sorted(
            call.line for call in calls if call.callee in RELEASE_CALLEES
        )
        for env_call in ctx.model.env_calls_in(fn.qualname):
            holding = None
            for acquire in acquires:
                if acquire.line >= env_call.line:
                    break
                released = any(
                    acquire.line < line < env_call.line
                    for line in release_lines
                )
                if not released:
                    holding = acquire
            if holding is None:
                continue
            findings.append(
                Finding(
                    rule="lock-across-boundary",
                    severity="error",
                    file=env_call.file,
                    line=env_call.line,
                    function=env_call.function,
                    message=(
                        f"{env_call.op} runs while the lock acquired at "
                        f"line {holding.line} is held; a fault here can "
                        f"leak the lock"
                    ),
                    site_ids=(env_call.site_id,),
                    exception=env_call.exception_types[0],
                )
            )
    return findings
