"""Rule catalog for the fault-handling lint pass.

Importing this package registers every built-in rule; the registry maps
stable rule ids to their check functions.  Rules are grounded in the
residual-bug shapes of the seeded failure dataset (see each module's
docstring for the representative issue).
"""

from .base import (
    ABORT_CALLEES,
    BENIGN_CALLEES,
    BROAD_TYPES,
    Finding,
    LintContext,
    RuleInfo,
    SEVERITIES,
    registered_rules,
    rule,
    severity_rank,
)

# Importing the modules registers their rules.
from . import abort  # noqa: F401
from . import blocking  # noqa: F401
from . import broad_catch  # noqa: F401
from . import concurrency  # noqa: F401
from . import escape  # noqa: F401
from . import latch  # noqa: F401
from . import lock_boundary  # noqa: F401
from . import retry  # noqa: F401
from . import swallowed  # noqa: F401

__all__ = [
    "ABORT_CALLEES",
    "BENIGN_CALLEES",
    "BROAD_TYPES",
    "Finding",
    "LintContext",
    "RuleInfo",
    "SEVERITIES",
    "registered_rules",
    "rule",
    "severity_rank",
]
