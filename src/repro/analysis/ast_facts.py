"""AST fact extraction from mini-system source.

The Instrumenter's static side begins by scanning each system module for
the facts every later analysis consumes: function spans, logging
statements (the observables), env-boundary calls (the external fault
sites), ``raise`` statements, try/except structure, call sites (including
executor submissions and task spawns), conditions, and assignments.

The extraction is deliberately name-based and conservative — the paper's
analysis accepts imprecision (false dependencies) and relies on the
dynamic feedback loop to recover (§4.1).
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable, Optional

from ..injection.sites import SiteRef, normalize_path
from ..sim.env import ENV_OPS

LOG_METHODS = {"debug", "info", "warn", "error", "fatal", "exception"}

#: Methods that mutate the object they are called on; a call
#: ``self.pending.append(x)`` counts as a write to ``pending`` for slicing.
MUTATING_METHODS = {
    "append",
    "add",
    "remove",
    "discard",
    "clear",
    "pop",
    "popleft",
    "extend",
    "update",
    "put_nowait",
    "insert",
    "appendleft",
}


@dataclasses.dataclass(frozen=True)
class FunctionFact:
    qualname: str       # "module:Class.method" or "module:function"
    name: str           # bare name (matches frame.f_code.co_name at runtime)
    file: str
    line: int
    end_line: int
    class_name: str = ""


@dataclasses.dataclass(frozen=True)
class LogFact:
    file: str
    line: int
    function: str       # enclosing function qualname
    level: str
    template: str

    @property
    def template_id(self) -> str:
        return f"{self.file}:{self.line}"


@dataclasses.dataclass(frozen=True)
class EnvCallFact:
    file: str
    line: int
    function: str        # qualname
    function_name: str   # bare name (used in the runtime site id)
    op: str

    @property
    def site(self) -> SiteRef:
        return SiteRef(self.file, self.line, self.function_name, self.op)

    @property
    def site_id(self) -> str:
        return self.site.site_id

    @property
    def exception_types(self) -> tuple[str, ...]:
        return ENV_OPS[self.op]


@dataclasses.dataclass(frozen=True)
class RaiseFact:
    file: str
    line: int
    function: str
    exception: str            # "" for a bare re-raise
    handler_line: int = 0     # enclosing except-clause line, 0 if none


@dataclasses.dataclass(frozen=True)
class CallFact:
    file: str
    line: int
    caller: str          # qualname
    callee: str          # bare callee name
    is_submit: bool = False
    is_spawn: bool = False
    #: Receiver of an attribute call: ``self.wal_lock.acquire()`` ->
    #: ``wal_lock``.  Empty for plain-name calls.  This is what lets the
    #: flow pass pair queue put/get sites and the concurrency rules tell
    #: two locks apart.
    owner: str = ""


@dataclasses.dataclass(frozen=True)
class HandlerFact:
    file: str
    line: int            # line of the except clause
    function: str
    exceptions: tuple[str, ...]   # caught type names; ("Exception",) for bare
    body_start: int
    body_end: int


@dataclasses.dataclass(frozen=True)
class TryFact:
    file: str
    function: str
    body_start: int
    body_end: int
    handlers: tuple[HandlerFact, ...]

    def covers(self, line: int) -> bool:
        return self.body_start <= line <= self.body_end


@dataclasses.dataclass(frozen=True)
class ConditionFact:
    file: str
    line: int            # line of the if/while test
    function: str
    variables: tuple[str, ...]
    scope_start: int     # full statement span including else branches
    scope_end: int
    is_loop: bool = False


@dataclasses.dataclass(frozen=True)
class AssignFact:
    file: str
    line: int
    function: str
    targets: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class ReturnFact:
    file: str
    line: int
    function: str
    #: The return hands back a trivially-constant value: a bare ``return``,
    #: a literal constant, or an empty container.  These are the sentinel
    #: shapes a defective handler uses to paper over a fault (PyResBugs'
    #: "swallow by default value").
    is_sentinel: bool
    value_repr: str = ""      # "None", "0", "[]", ... ("" when non-constant)


@dataclasses.dataclass(frozen=True)
class ClassFact:
    name: str
    bases: tuple[str, ...]


@dataclasses.dataclass
class ModuleFacts:
    module: str
    file: str
    functions: list[FunctionFact] = dataclasses.field(default_factory=list)
    logs: list[LogFact] = dataclasses.field(default_factory=list)
    env_calls: list[EnvCallFact] = dataclasses.field(default_factory=list)
    raises: list[RaiseFact] = dataclasses.field(default_factory=list)
    calls: list[CallFact] = dataclasses.field(default_factory=list)
    trys: list[TryFact] = dataclasses.field(default_factory=list)
    conditions: list[ConditionFact] = dataclasses.field(default_factory=list)
    assigns: list[AssignFact] = dataclasses.field(default_factory=list)
    returns: list[ReturnFact] = dataclasses.field(default_factory=list)
    classes: list[ClassFact] = dataclasses.field(default_factory=list)


def _attr_chain_tail(node: ast.expr) -> str:
    """The final identifier of an expression like ``self.env`` -> ``env``."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _callee_name(func: ast.expr) -> str:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _callable_ref_name(node: ast.expr) -> str:
    """Name of a function referenced as a value (submit/spawn targets)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _callee_name(node.func)
    return ""


class _FactVisitor(ast.NodeVisitor):
    def __init__(self, module: str, file: str, facts: ModuleFacts) -> None:
        self.module = module
        self.file = file
        self.facts = facts
        self._class_stack: list[str] = []
        self._func_stack: list[FunctionFact] = []
        self._handler_stack: list[HandlerFact] = []

    # ----------------------------------------------------------- scope tracking

    @property
    def _function(self) -> str:
        return self._func_stack[-1].qualname if self._func_stack else self.module

    @property
    def _function_name(self) -> str:
        return self._func_stack[-1].name if self._func_stack else "<module>"

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        bases = tuple(
            base_name
            for base in node.bases
            if (base_name := _attr_chain_tail(base))
        )
        self.facts.classes.append(ClassFact(node.name, bases))
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        class_name = self._class_stack[-1] if self._class_stack else ""
        qual = f"{class_name}.{node.name}" if class_name else node.name
        fact = FunctionFact(
            qualname=f"{self.module}:{qual}",
            name=node.name,
            file=self.file,
            line=node.lineno,
            end_line=node.end_lineno or node.lineno,
            class_name=class_name,
        )
        self.facts.functions.append(fact)
        self._func_stack.append(fact)
        self.generic_visit(node)
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # ------------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = _callee_name(func)

        if isinstance(func, ast.Attribute):
            base_tail = _attr_chain_tail(func.value)
            if name in LOG_METHODS and base_tail in ("log", "logger"):
                self._record_log(node, name)
                self.generic_visit(node)
                return
            if name in ENV_OPS and base_tail == "env":
                self.facts.env_calls.append(
                    EnvCallFact(
                        file=self.file,
                        line=node.lineno,
                        function=self._function,
                        function_name=self._function_name,
                        op=name,
                    )
                )
                self.generic_visit(node)
                return
            if name == "submit" and node.args:
                target = _callable_ref_name(node.args[0])
                if target:
                    self.facts.calls.append(
                        CallFact(
                            self.file,
                            node.lineno,
                            self._function,
                            target,
                            is_submit=True,
                        )
                    )
                # Skip the callable reference itself so it is not also
                # recorded as a synchronous call.
                for arg in node.args[1:]:
                    self.visit(arg)
                return
            if name == "spawn" and len(node.args) >= 2:
                target = _callable_ref_name(node.args[1])
                if target:
                    self.facts.calls.append(
                        CallFact(
                            self.file,
                            node.lineno,
                            self._function,
                            target,
                            is_spawn=True,
                        )
                    )
                self.visit(node.args[0])
                for arg in node.args[2:]:
                    self.visit(arg)
                return

        if name:
            owner = (
                _attr_chain_tail(func.value)
                if isinstance(func, ast.Attribute)
                else ""
            )
            self.facts.calls.append(
                CallFact(
                    self.file, node.lineno, self._function, name, owner=owner
                )
            )
        self.generic_visit(node)

    def _record_log(self, node: ast.Call, method: str) -> None:
        if not node.args:
            return
        first = node.args[0]
        if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
            return
        level = {"exception": "ERROR", "warn": "WARN"}.get(method, method.upper())
        self.facts.logs.append(
            LogFact(
                file=self.file,
                line=node.lineno,
                function=self._function,
                level=level,
                template=first.value,
            )
        )

    # ------------------------------------------------------------------ raises

    def visit_Raise(self, node: ast.Raise) -> None:
        exception = ""
        if node.exc is not None:
            if isinstance(node.exc, ast.Call):
                exception = _callee_name(node.exc.func)
            else:
                exception = _attr_chain_tail(node.exc)
        handler_line = self._handler_stack[-1].line if self._handler_stack else 0
        self.facts.raises.append(
            RaiseFact(
                file=self.file,
                line=node.lineno,
                function=self._function,
                exception=exception,
                handler_line=handler_line,
            )
        )
        self.generic_visit(node)

    # --------------------------------------------------------------- structure

    def visit_Try(self, node: ast.Try) -> None:
        body_start = node.body[0].lineno
        body_end = max(
            (stmt.end_lineno or stmt.lineno) for stmt in node.body
        )
        handlers: list[HandlerFact] = []
        for handler in node.handlers:
            types: tuple[str, ...]
            if handler.type is None:
                types = ("Exception",)
            elif isinstance(handler.type, ast.Tuple):
                types = tuple(
                    name
                    for element in handler.type.elts
                    if (name := _attr_chain_tail(element))
                )
            else:
                types = (_attr_chain_tail(handler.type),)
            h_start = handler.body[0].lineno if handler.body else handler.lineno
            h_end = max(
                (stmt.end_lineno or stmt.lineno) for stmt in handler.body
            ) if handler.body else handler.lineno
            handlers.append(
                HandlerFact(
                    file=self.file,
                    line=handler.lineno,
                    function=self._function,
                    exceptions=types,
                    body_start=h_start,
                    body_end=h_end,
                )
            )
        self.facts.trys.append(
            TryFact(
                file=self.file,
                function=self._function,
                body_start=body_start,
                body_end=body_end,
                handlers=tuple(handlers),
            )
        )
        # Visit body/else/finally outside any handler scope; visit each
        # handler body with that handler on the stack so raises inside it
        # know their enclosing catch.
        for stmt in node.body + node.orelse + node.finalbody:
            self.visit(stmt)
        for handler, fact in zip(node.handlers, handlers):
            self._handler_stack.append(fact)
            for stmt in handler.body:
                self.visit(stmt)
            self._handler_stack.pop()

    def _visit_branch(self, node: ast.If | ast.While) -> None:
        variables = _test_variables(node.test)
        scope_end = node.end_lineno or node.lineno
        self.facts.conditions.append(
            ConditionFact(
                file=self.file,
                line=node.lineno,
                function=self._function,
                variables=variables,
                scope_start=node.lineno,
                scope_end=scope_end,
                is_loop=isinstance(node, ast.While),
            )
        )
        self.generic_visit(node)

    visit_If = _visit_branch
    visit_While = _visit_branch

    # ----------------------------------------------------------------- returns

    def visit_Return(self, node: ast.Return) -> None:
        is_sentinel = False
        value_repr = ""
        value = node.value
        if value is None:
            is_sentinel, value_repr = True, "None"
        elif isinstance(value, ast.Constant):
            is_sentinel, value_repr = True, repr(value.value)
        elif isinstance(value, (ast.List, ast.Tuple)) and not value.elts:
            is_sentinel = True
            value_repr = "[]" if isinstance(value, ast.List) else "()"
        elif isinstance(value, ast.Dict) and not value.keys:
            is_sentinel, value_repr = True, "{}"
        self.facts.returns.append(
            ReturnFact(
                file=self.file,
                line=node.lineno,
                function=self._function,
                is_sentinel=is_sentinel,
                value_repr=value_repr,
            )
        )
        self.generic_visit(node)

    # ----------------------------------------------------------------- assigns

    def visit_Assign(self, node: ast.Assign) -> None:
        targets = tuple(
            name for target in node.targets for name in _target_names(target)
        )
        if targets:
            self.facts.assigns.append(
                AssignFact(self.file, node.lineno, self._function, targets)
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        targets = tuple(_target_names(node.target))
        if targets:
            self.facts.assigns.append(
                AssignFact(self.file, node.lineno, self._function, targets)
            )
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        # Mutating method calls count as writes for the slicing analysis.
        value = node.value
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            if value.func.attr in MUTATING_METHODS:
                owner = _attr_chain_tail(value.func.value)
                if owner and owner != "self":
                    self.facts.assigns.append(
                        AssignFact(
                            self.file, node.lineno, self._function, (owner,)
                        )
                    )
        self.generic_visit(node)


def _target_names(target: ast.expr) -> list[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, ast.Attribute):
        return [target.attr]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in target.elts:
            names.extend(_target_names(element))
        return names
    if isinstance(target, ast.Subscript):
        return _target_names(target.value)
    return []


def _test_variables(test: ast.expr) -> tuple[str, ...]:
    """Variable names read by a boolean test (Names plus attribute tails)."""
    names: list[str] = []
    call_funcs: set[int] = set()
    for node in ast.walk(test):
        if isinstance(node, ast.Call):
            call_funcs.add(id(node.func))
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id not in ("self",):
            if id(node) not in call_funcs:
                names.append(node.id)
        elif isinstance(node, ast.Attribute) and id(node) not in call_funcs:
            names.append(node.attr)
    # Deduplicate, preserving order.
    seen: dict[str, None] = {}
    for name in names:
        seen.setdefault(name, None)
    return tuple(seen)


def extract_module_facts(module: str, file_path: str, source: str) -> ModuleFacts:
    """Parse one module's source and extract all facts."""
    tree = ast.parse(source, filename=file_path)
    facts = ModuleFacts(module=module, file=normalize_path(file_path))
    visitor = _FactVisitor(module, facts.file, facts)
    visitor.visit(tree)
    return facts
