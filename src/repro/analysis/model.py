"""Causal-graph node taxonomy and graph container (§4.1).

Node kinds mirror the paper exactly:

* ``location`` — a program point being executed.
* ``condition`` — a program point guarded by a boolean expression.
* ``invocation`` — execution reaching a method invocation.
* ``handler`` — reaching the entry of an exception handler (catch block).
* ``internal-exception`` — an invocation that *propagates* an exception
  originating deeper in the system.
* ``new-exception`` — a ``throw new`` inside system code.
* ``external-exception`` — an exception thrown by a library call (our env
  boundary); with new-exception nodes, these are the fault-site sources.
* ``external-corruption`` — a library call returning *corrupt data* (the
  soft-fault dimension): the op succeeds but the value is poisoned by a
  registered corruption (``corrupt:<kind>``).

Edges run *prior → node* ("cause → effect"); sinks are the location nodes
of the relevant observables' logging statements.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterable, Optional


class NodeKind(enum.Enum):
    LOCATION = "location"
    CONDITION = "condition"
    INVOCATION = "invocation"
    HANDLER = "handler"
    INTERNAL_EXCEPTION = "internal-exception"
    NEW_EXCEPTION = "new-exception"
    EXTERNAL_EXCEPTION = "external-exception"
    EXTERNAL_CORRUPTION = "external-corruption"


#: Kinds at which the recursive causally-prior analysis stops (Algorithm 1
#: line 5): these are the sources of the graph.
SOURCE_KINDS = frozenset(
    {
        NodeKind.NEW_EXCEPTION,
        NodeKind.EXTERNAL_EXCEPTION,
        NodeKind.EXTERNAL_CORRUPTION,
    }
)


@dataclasses.dataclass(frozen=True)
class Node:
    """A causal-graph node with a stable string identity."""

    kind: NodeKind
    node_id: str
    file: str = ""
    line: int = 0
    function: str = ""       # enclosing function qualname ("" for invocation)
    exception: str = ""      # exception type for exception-flavored nodes
    detail: str = ""         # op name / callee / observable template id

    def __str__(self) -> str:
        return self.node_id


def location_node(file: str, line: int, function: str, detail: str = "") -> Node:
    return Node(
        NodeKind.LOCATION, f"loc:{file}:{line}", file, line, function, detail=detail
    )


def condition_node(file: str, line: int, function: str) -> Node:
    return Node(NodeKind.CONDITION, f"cond:{file}:{line}", file, line, function)


def invocation_node(qualname: str) -> Node:
    return Node(NodeKind.INVOCATION, f"inv:{qualname}", detail=qualname)


def handler_node(file: str, line: int, function: str, exception: str = "") -> Node:
    return Node(
        NodeKind.HANDLER, f"handler:{file}:{line}", file, line, function, exception
    )


def internal_exception_node(
    file: str, line: int, function: str, exception: str
) -> Node:
    return Node(
        NodeKind.INTERNAL_EXCEPTION,
        f"intexc:{file}:{line}:{exception}",
        file,
        line,
        function,
        exception,
    )


def new_exception_node(file: str, line: int, function: str, exception: str) -> Node:
    return Node(
        NodeKind.NEW_EXCEPTION,
        f"newexc:{file}:{line}:{exception}",
        file,
        line,
        function,
        exception,
    )


def external_exception_node(site_id: str, exception: str) -> Node:
    file, line, function, op = _split_site(site_id)
    return Node(
        NodeKind.EXTERNAL_EXCEPTION,
        f"extexc:{site_id}:{exception}",
        file,
        line,
        function,
        exception,
        detail=op,
    )


def external_corruption_node(site_id: str, spec: str) -> Node:
    """A soft-fault source: env op at ``site_id`` returns corrupted data.

    ``spec`` is the full canonical spec string (``corrupt:<kind>``); it is
    stored in the node's ``exception`` slot so every spec-string consumer
    (candidate enumeration, coverage, provenance) reads one field
    regardless of dimension.
    """
    file, line, function, op = _split_site(site_id)
    return Node(
        NodeKind.EXTERNAL_CORRUPTION,
        f"extval:{site_id}:{spec}",
        file,
        line,
        function,
        spec,
        detail=op,
    )


def _split_site(site_id: str) -> tuple[str, int, str, str]:
    parts = site_id.rsplit(":", 3)
    return parts[0], int(parts[1]), parts[2], parts[3]


class CausalGraph:
    """A DAG-ish graph from fault sites to observable log statements.

    (The underlying relation may contain cycles through recursive calls;
    algorithms on it use BFS and never assume acyclicity.)
    """

    def __init__(self) -> None:
        self.nodes: dict[str, Node] = {}
        #: prior -> effects (cause points to what it can cause)
        self.edges: dict[str, set[str]] = {}
        #: effect -> priors (reverse adjacency, kept in sync)
        self.redges: dict[str, set[str]] = {}
        #: observable template id -> sink node id
        self.sinks: dict[str, str] = {}

    def __contains__(self, node_id: str) -> bool:
        return node_id in self.nodes

    @property
    def node_count(self) -> int:
        return len(self.nodes)

    @property
    def edge_count(self) -> int:
        return sum(len(targets) for targets in self.edges.values())

    def add_node(self, node: Node) -> Node:
        existing = self.nodes.get(node.node_id)
        if existing is not None:
            return existing
        self.nodes[node.node_id] = node
        self.edges.setdefault(node.node_id, set())
        self.redges.setdefault(node.node_id, set())
        return node

    def add_edge(self, prior: Node, effect: Node) -> None:
        self.add_node(prior)
        self.add_node(effect)
        self.edges[prior.node_id].add(effect.node_id)
        self.redges[effect.node_id].add(prior.node_id)

    def mark_sink(self, template_id: str, node: Node) -> None:
        self.add_node(node)
        self.sinks[template_id] = node.node_id

    def sources(self) -> list[Node]:
        """All fault-site nodes present in the graph."""
        return [
            node for node in self.nodes.values() if node.kind in SOURCE_KINDS
        ]

    def external_sources(self) -> list[Node]:
        """The injectable fault sites (exception and corruption nodes)."""
        return [
            node
            for node in self.nodes.values()
            if node.kind is NodeKind.EXTERNAL_EXCEPTION
            or node.kind is NodeKind.EXTERNAL_CORRUPTION
        ]

    def priors(self, node_id: str) -> set[str]:
        return self.redges.get(node_id, set())

    def effects(self, node_id: str) -> set[str]:
        return self.edges.get(node_id, set())

    def distances_to_sink(self, sink_node_id: str) -> dict[str, int]:
        """BFS hop distance from every node *to* the given sink.

        Walks the reverse adjacency starting at the sink; the result maps
        node id -> hops along causal edges to reach the sink.  This is the
        precomputation the paper describes in §7 (distances are queried
        each round instead of recomputed).
        """
        distances = {sink_node_id: 0}
        frontier = [sink_node_id]
        while frontier:
            next_frontier: list[str] = []
            for node_id in frontier:
                for prior in self.redges.get(node_id, ()):
                    if prior not in distances:
                        distances[prior] = distances[node_id] + 1
                        next_frontier.append(prior)
            frontier = next_frontier
        return distances


@dataclasses.dataclass(frozen=True)
class SourceInfo:
    """An injectable fault candidate extracted from the graph.

    ``exception`` holds the canonical fault-spec string — a bare
    exception name for the raise dimension, ``corrupt:<kind>`` for the
    soft dimension (the field name predates the second dimension).
    """

    node_id: str
    site_id: str
    exception: str


def filter_candidates_by_dims(
    candidates: list[SourceInfo], fault_dims: str
) -> list[SourceInfo]:
    """Restrict candidates to the requested fault dimensions.

    ``exceptions`` keeps raise specs, ``soft`` keeps corruptions, ``all``
    keeps everything.  Relative order is preserved.
    """
    if fault_dims == "all":
        return candidates
    want_corrupt = fault_dims == "soft"
    return [
        info
        for info in candidates
        if info.exception.startswith("corrupt:") == want_corrupt
    ]


def graph_fault_candidates(graph: CausalGraph) -> list[SourceInfo]:
    """Enumerate injectable (site, fault-spec) candidates from the graph."""
    out: list[SourceInfo] = []
    for node in graph.external_sources():
        # node_id = "<prefix>:<site_id>:<spec>".  The spec itself may
        # contain a colon (``corrupt:<kind>``), so strip it by length
        # instead of splitting on the right-most colon.
        prefix = (
            "extexc:" if node.kind is NodeKind.EXTERNAL_EXCEPTION else "extval:"
        )
        body = node.node_id[len(prefix):]
        site_id = body[: len(body) - len(node.exception) - 1]
        out.append(SourceInfo(node.node_id, site_id, node.exception))
    out.sort(key=lambda info: (info.site_id, info.exception))
    return out
