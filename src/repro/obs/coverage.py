"""Fault-space coverage accounting for one search (campaign observability).

The paper's efficiency claim — "feedback prunes the fault space" — is a
statement about how much of the *injectable fault space* a strategy has
to touch before it reproduces the failure.  This module makes that
measurable:

* :func:`enumerate_fault_space` builds the full space for one case as the
  set of ``(site_id, exception, occurrence)`` triples: every injectable
  candidate from the causal graph (site × exception, the catalog rooted
  in :mod:`repro.injection.sites`) crossed with the occurrence window the
  fault-free probe run observed for that site.  ANDURIL and every
  baseline strategy enumerate the same space from the same inputs, so
  their coverage fractions are directly comparable.
* :class:`CoverageTracker` accounts, per round and cumulatively, which
  fraction of that space was **planned** (armed in some round's window),
  **fired** (actually injected), and **no-op'd** (armed in a round whose
  run injected nothing — under a fixed seed those instances never fire).

Tracking is **off by default** and follows the ``NULL_RECORDER`` pattern:
call sites hold either a real :class:`CoverageTracker` or the shared
:data:`NULL_COVERAGE` singleton whose methods return immediately, so the
untracked hot path allocates nothing and the ``(seed, plan)`` determinism
is untouched.  All recorded quantities derive from the committed search
path only (window contents and the injected instance), so the accounting
is byte-identical for ``explore(jobs=1)`` and ``explore(jobs=N)``.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping, Optional

#: One point of the fault space: (site_id, exception, occurrence).
Triple = tuple[str, str, int]


def enumerate_fault_space(
    candidates: Iterable,
    occurrences_by_site: Mapping[str, int],
    max_instances_per_site: Optional[int] = None,
    prune: str = "none",
    pruner=None,
) -> frozenset[Triple]:
    """The full injectable fault space for one case.

    ``candidates`` is any iterable of objects with ``site_id`` and
    ``exception`` attributes (e.g. :class:`repro.analysis.model.SourceInfo`
    from ``graph_fault_candidates``).  ``occurrences_by_site`` maps a site
    to the number of times the fault-free probe executed it; a site the
    probe never exercised still contributes one speculative first
    occurrence, mirroring the priority pool's construction.

    With ``prune="static"`` the space is filtered through ``pruner`` — an
    object with a ``live(site_id, exception, occurrence)`` predicate (see
    :class:`repro.core.pruning.StaticPruner`) — dropping the triples the
    flow pass rules out.  Pruning changes the *accounting* space only;
    strategies still arm whatever they like, and a fired triple outside
    the pruned space is recorded as a contradiction by
    :class:`CoverageTracker`.
    """
    if prune not in ("none", "static"):
        raise ValueError("prune must be 'none' or 'static'")
    if prune == "static" and pruner is None:
        raise ValueError("prune='static' requires a pruner")
    space: set[Triple] = set()
    for candidate in candidates:
        count = max(int(occurrences_by_site.get(candidate.site_id, 0)), 1)
        if max_instances_per_site is not None:
            count = min(count, max_instances_per_site)
        for occurrence in range(1, count + 1):
            triple = (candidate.site_id, candidate.exception, occurrence)
            if prune == "static" and not pruner.live(*triple):
                continue
            space.add(triple)
    return frozenset(space)


def occurrences_from_trace(trace: Iterable) -> dict[str, int]:
    """Per-site occurrence counts from a probe run's FIR trace events."""
    counts: dict[str, int] = {}
    for event in trace:
        current = counts.get(event.site_id, 0)
        if event.occurrence > current:
            counts[event.site_id] = event.occurrence
    return counts


@dataclasses.dataclass(frozen=True)
class RoundCoverage:
    """Cumulative coverage right after one round committed."""

    round_number: int
    planned_new: int      # instances first armed this round
    planned: int          # cumulative distinct instances ever armed
    fired: int            # cumulative distinct instances injected
    noop: int             # cumulative distinct instances armed in dry rounds

    def as_list(self) -> list[int]:
        return [
            self.round_number,
            self.planned_new,
            self.planned,
            self.fired,
            self.noop,
        ]


@dataclasses.dataclass(frozen=True)
class CoverageSummary:
    """End-of-search coverage accounting over the full fault space."""

    space_size: int
    planned: int
    fired: int
    noop: int
    #: Instances a strategy armed that are outside the enumerated space
    #: (e.g. a baseline guessing occurrences the probe never observed).
    planned_outside: int
    rounds: tuple[RoundCoverage, ...]
    #: Static pruning accounting (``None`` unless the tracker was built
    #: with a pruned space): size of the space ``prune=static`` keeps.
    pruned_space_size: Optional[int] = None
    #: Fired triples the static analysis had called unreachable — the
    #: dynamic-contradiction check.  Non-empty means the pruning claim is
    #: wrong for this case, and the test suite fails hard on it.
    contradictions: tuple[Triple, ...] = ()

    @property
    def planned_fraction(self) -> float:
        return self.planned / self.space_size if self.space_size else 0.0

    @property
    def fired_fraction(self) -> float:
        return self.fired / self.space_size if self.space_size else 0.0

    @property
    def noop_fraction(self) -> float:
        return self.noop / self.space_size if self.space_size else 0.0

    def to_dict(self) -> dict:
        """JSON shape persisted in ``bench_summary.json`` and the ledger.

        Fractions are rounded to six places so serialized documents are
        byte-stable; the raw integers carry the exact values.  The
        pruning keys appear only when the search ran with
        ``prune=static``, so documents from unpruned runs keep their
        historical shape.
        """
        document = {
            "space": self.space_size,
            "planned": self.planned,
            "fired": self.fired,
            "noop": self.noop,
            "planned_outside": self.planned_outside,
            "planned_fraction": round(self.planned_fraction, 6),
            "fired_fraction": round(self.fired_fraction, 6),
            "noop_fraction": round(self.noop_fraction, 6),
            "rounds": [entry.as_list() for entry in self.rounds],
        }
        if self.pruned_space_size is not None:
            document["pruned_space"] = self.pruned_space_size
            document["pruned"] = self.space_size - self.pruned_space_size
            document["pruned_fraction"] = round(
                (self.space_size - self.pruned_space_size) / self.space_size
                if self.space_size
                else 0.0,
                6,
            )
            document["contradictions"] = len(self.contradictions)
            if self.contradictions:
                document["contradiction_triples"] = [
                    list(triple) for triple in sorted(self.contradictions)
                ]
        return document


class NullCoverageTracker:
    """The disabled tracker: every method is a no-op (shared instance)."""

    __slots__ = ()
    enabled = False

    def record_round(self, round_number, planned, fired) -> None:
        return None

    def summary(self) -> Optional[CoverageSummary]:
        return None


NULL_COVERAGE = NullCoverageTracker()


class CoverageTracker:
    """Accumulates planned/fired/no-op coverage over one search's rounds."""

    enabled = True

    def __init__(
        self,
        space: Iterable[Triple],
        pruned_space: Optional[Iterable[Triple]] = None,
    ) -> None:
        self._space = frozenset(space)
        #: The subset ``prune=static`` kept, or ``None`` when pruning is
        #: off.  Must be a subset of ``space``; anything that fires from
        #: ``space - pruned_space`` is a contradiction of the static
        #: analysis and is recorded as such.
        self._pruned_space = (
            frozenset(pruned_space) if pruned_space is not None else None
        )
        if self._pruned_space is not None and not self._pruned_space <= self._space:
            raise ValueError("pruned_space must be a subset of space")
        self._planned: set[Triple] = set()
        self._fired: set[Triple] = set()
        self._noop: set[Triple] = set()
        self._outside: set[Triple] = set()
        self._contradictions: set[Triple] = set()
        self._rounds: list[RoundCoverage] = []

    @property
    def space_size(self) -> int:
        return len(self._space)

    def record_round(self, round_number: int, planned, fired) -> None:
        """Account one committed round.

        ``planned`` is the round's (deduplicated) injection window;
        ``fired`` is the instance the run injected, or ``None`` for a dry
        round.  Both are :class:`~repro.injection.sites.FaultInstance`-like.
        """
        armed: list[Triple] = []
        for instance in planned:
            triple = (instance.site_id, instance.exception, instance.occurrence)
            if triple in self._space:
                armed.append(triple)
            else:
                self._outside.add(triple)
        new = sum(1 for triple in armed if triple not in self._planned)
        self._planned.update(armed)
        if fired is not None:
            triple = (fired.site_id, fired.exception, fired.occurrence)
            # Out-of-space firings (a strategy guessing occurrences the
            # probe never observed) stay out of the fired set, so
            # fired ⊆ planned ⊆ space holds; they are already visible
            # through planned_outside.
            if triple in self._space:
                self._fired.add(triple)
                if (
                    self._pruned_space is not None
                    and triple not in self._pruned_space
                ):
                    self._contradictions.add(triple)
        else:
            self._noop.update(armed)
        self._rounds.append(
            RoundCoverage(
                round_number=round_number,
                planned_new=new,
                planned=len(self._planned),
                fired=len(self._fired),
                noop=len(self._noop),
            )
        )

    def summary(self) -> CoverageSummary:
        return CoverageSummary(
            space_size=len(self._space),
            planned=len(self._planned),
            fired=len(self._fired),
            noop=len(self._noop),
            planned_outside=len(self._outside),
            rounds=tuple(self._rounds),
            pruned_space_size=(
                len(self._pruned_space)
                if self._pruned_space is not None
                else None
            ),
            contradictions=tuple(sorted(self._contradictions)),
        )
