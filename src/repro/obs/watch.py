"""Live campaign view over the ``repro.obs.bus`` event stream.

``python -m repro watch`` feeds events — from a finished file or a
``--follow`` tail against a concurrently running campaign — through a
:class:`WatchState` reducer and renders a compact TTY table: per-cell
status and round counts, rank-of-ground-truth movement, the operational
rates carried by heartbeats (cache/checkpoint/speculation), and an ETA
estimated from the rolling ledger history.

Like the rest of ``repro.obs``, this module imports nothing from
sibling ``repro`` packages (the ledger and bus are package-local).
"""

from __future__ import annotations

import dataclasses
import statistics
from typing import Optional

from . import ledger

#: Cell lifecycle: announced -> emitting rounds -> finished.
PENDING = "pending"
RUNNING = "running"
DONE = "done"


@dataclasses.dataclass
class CellState:
    """Progress of one (case, strategy) campaign cell."""

    case_id: str
    strategy: str
    status: str = PENDING
    rounds: int = 0
    #: Rank-of-ground-truth movement: first/last seen (explorer cells).
    first_rank: Optional[int] = None
    last_rank: Optional[int] = None
    last_injected: Optional[str] = None
    success: Optional[bool] = None
    result_rounds: Optional[int] = None
    seconds: Optional[float] = None

    @property
    def key(self) -> tuple[str, str]:
        return (self.case_id, self.strategy)

    @property
    def rank_cell(self) -> str:
        """``first->last`` ground-truth rank movement, or ``-``."""
        if self.last_rank is None:
            return "-"
        if self.first_rank is None or self.first_rank == self.last_rank:
            return str(self.last_rank)
        return f"{self.first_rank}->{self.last_rank}"

    @property
    def result_cell(self) -> str:
        if self.status != DONE:
            return "-"
        if self.success:
            return f"ok {self.result_rounds}r/{self.seconds:.1f}s"
        return f"fail {self.result_rounds}r"


class WatchState:
    """Reducer folding a bus event stream into live campaign progress."""

    def __init__(self):
        self.cells: dict[tuple[str, str], CellState] = {}
        self.campaign: Optional[dict] = None
        self.campaign_done: Optional[dict] = None
        self.started_at: Optional[float] = None
        self.last_t: Optional[float] = None
        #: Latest heartbeat per source ("explorer", "campaign", ...).
        self.heartbeats: dict[str, dict] = {}
        self.events_seen = 0
        self.rounds_seen = 0

    # ----------------------------------------------------------------- apply

    def _cell(self, event: dict) -> Optional[CellState]:
        case_id = event.get("case_id")
        strategy = event.get("strategy")
        if not isinstance(case_id, str) or not isinstance(strategy, str):
            return None
        cell = self.cells.get((case_id, strategy))
        if cell is None:
            cell = CellState(case_id, strategy)
            self.cells[cell.key] = cell
        return cell

    def apply(self, event: dict) -> None:
        if not isinstance(event, dict):
            return
        self.events_seen += 1
        t = event.get("t")
        if isinstance(t, (int, float)):
            self.last_t = float(t)
        event_type = event.get("type")
        if event_type == "campaign.start":
            # A new campaign in the same stream resets the board.
            self.__init__()
            self.events_seen = 1
            self.campaign = event
            if isinstance(t, (int, float)):
                self.started_at = float(t)
                self.last_t = float(t)
        elif event_type == "case.start":
            cell = self._cell(event)
            if cell is not None and cell.status == PENDING:
                cell.status = RUNNING
        elif event_type in ("round.begin", "round.end"):
            cell = self._cell(event)
            if cell is not None:
                if cell.status == PENDING:
                    cell.status = RUNNING
                round_number = event.get("round")
                if isinstance(round_number, int):
                    cell.rounds = max(cell.rounds, round_number)
                if event_type == "round.end":
                    self.rounds_seen += 1
                    rank = event.get("rank")
                    if isinstance(rank, int):
                        if cell.first_rank is None:
                            cell.first_rank = rank
                        cell.last_rank = rank
                    injected = event.get("injected")
                    if isinstance(injected, str):
                        cell.last_injected = injected
        elif event_type == "plan.fired":
            cell = self._cell(event)
            if cell is not None and cell.status == PENDING:
                cell.status = RUNNING
        elif event_type == "case.done":
            cell = self._cell(event)
            if cell is not None:
                cell.status = DONE
                cell.success = bool(event.get("success"))
                rounds = event.get("rounds")
                if isinstance(rounds, int):
                    cell.result_rounds = rounds
                    cell.rounds = max(cell.rounds, rounds)
                seconds = event.get("seconds")
                if isinstance(seconds, (int, float)):
                    cell.seconds = float(seconds)
        elif event_type == "campaign.done":
            self.campaign_done = event
        elif event_type == "heartbeat":
            source = event.get("source")
            if isinstance(source, str):
                self.heartbeats[source] = event

    # ------------------------------------------------------------------- eta

    def eta_seconds(self, history: Optional[list[dict]] = None) -> Optional[float]:
        """Remaining wall-clock estimate from the rolling ledger history.

        Each unfinished cell costs the median ledger ``seconds`` of its
        ``(case_id, strategy)`` across past campaigns (campaign median
        across all cells when that cell has no history); the total is
        divided by the campaign's worker count.  ``None`` without any
        usable history or with nothing left to run.
        """
        unfinished = [
            cell for cell in self.cells.values() if cell.status != DONE
        ]
        if self.campaign is not None:
            cells = self.campaign.get("cells")
            if isinstance(cells, int) and cells > len(self.cells):
                # Announced cells that have not even started yet.
                unfinished.extend(
                    [None] * (cells - len(self.cells))
                )
        if not unfinished:
            return 0.0
        if history is None:
            history = ledger.read_entries()
        by_cell: dict[tuple[str, str], list[float]] = {}
        everything: list[float] = []
        for entry in history:
            seconds = entry.get("seconds")
            if not isinstance(seconds, (int, float)):
                continue
            key = (entry.get("case_id"), entry.get("strategy"))
            by_cell.setdefault(key, []).append(float(seconds))
            everything.append(float(seconds))
        if not everything:
            return None
        fallback = statistics.median(everything)
        total = 0.0
        for cell in unfinished:
            samples = by_cell.get(cell.key) if cell is not None else None
            total += statistics.median(samples) if samples else fallback
        jobs = 1
        if self.campaign is not None and isinstance(
            self.campaign.get("jobs"), int
        ):
            jobs = max(self.campaign["jobs"], 1)
        return total / jobs


# -------------------------------------------------------------------- render


def _format_table(rows: list[list[str]]) -> list[str]:
    widths = [
        max(len(row[column]) for row in rows)
        for column in range(len(rows[0]))
    ]
    return [
        "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        for row in rows
    ]


def _rate(stats: dict, key: str = "hit_rate") -> Optional[str]:
    value = stats.get(key) if isinstance(stats, dict) else None
    if isinstance(value, (int, float)):
        return f"{value * 100:.0f}%"
    return None


def _heartbeat_line(state: WatchState) -> Optional[str]:
    """One line merging the freshest operational stats across sources."""
    parts: list[str] = []
    merged: dict[str, dict] = {}
    for event in state.heartbeats.values():
        for section in ("cache", "checkpoint", "speculation", "workers"):
            if isinstance(event.get(section), dict):
                merged[section] = event[section]
    cache = merged.get("cache")
    if cache:
        rate = _rate(cache)
        if rate is not None:
            parts.append(f"cache {rate} hit")
    checkpoint = merged.get("checkpoint")
    if checkpoint:
        forks = checkpoint.get("forks")
        if isinstance(forks, (int, float)):
            parts.append(f"checkpoint forks {int(forks)}")
    speculation = merged.get("speculation")
    if speculation:
        hits = speculation.get("hits", 0)
        misses = speculation.get("misses", 0)
        total = (hits or 0) + (misses or 0)
        rate = _rate(speculation)
        if rate is None and total:
            rate = f"{hits / total * 100:.0f}%"
        if rate is not None:
            parts.append(f"speculation {rate} hit")
    workers = merged.get("workers")
    if workers and isinstance(workers.get("jobs"), int):
        live = f"workers {workers['jobs']}"
        if isinstance(workers.get("pending"), int):
            live += f" ({workers['pending']} cells pending)"
        parts.append(live)
    if not parts:
        return None
    return "stats: " + " · ".join(parts)


def _latency_line(state: WatchState) -> Optional[str]:
    latency = None
    for event in state.heartbeats.values():
        if isinstance(event.get("latency"), dict):
            latency = event["latency"]
    if not latency:
        return None
    parts = []
    for name, quantiles in sorted(latency.items()):
        if not isinstance(quantiles, dict):
            continue
        p50 = quantiles.get("p50")
        p90 = quantiles.get("p90")
        if p50 is None:
            continue
        short = name.removeprefix("latency.").removesuffix("_seconds")
        part = f"{short} p50 {p50 * 1e3:.0f}ms"
        if p90 is not None:
            part += f" p90 {p90 * 1e3:.0f}ms"
        parts.append(part)
    if not parts:
        return None
    return "latency: " + " · ".join(parts)


def render(state: WatchState, history: Optional[list[dict]] = None) -> str:
    """The text view of the current state (one multi-line string)."""
    lines: list[str] = []
    header = "campaign"
    if state.campaign is not None:
        cases = state.campaign.get("cases")
        strategies = state.campaign.get("strategies")
        if isinstance(cases, list) and isinstance(strategies, list):
            header += f": {len(cases)} case(s) x {len(strategies)} strategy(ies)"
        cells = state.campaign.get("cells")
        if isinstance(cells, int):
            header += f", {cells} cell(s)"
        jobs = state.campaign.get("jobs")
        if isinstance(jobs, int):
            header += f", jobs={jobs}"
    if state.started_at is not None and state.last_t is not None:
        header += f"  elapsed {state.last_t - state.started_at:.1f}s"
    if state.campaign_done is not None:
        successes = state.campaign_done.get("successes")
        cells = state.campaign_done.get("cells")
        header += f"  — done ({successes}/{cells} reproduced)"
    else:
        eta = state.eta_seconds(history)
        if eta:
            header += f"  eta ~{eta:.0f}s"
    lines.append(header)
    if state.cells:
        rows = [["cell", "status", "rounds", "rank", "last injected", "result"]]
        for cell in sorted(
            state.cells.values(),
            key=lambda c: (c.strategy != "anduril", c.strategy,
                           len(c.case_id), c.case_id),
        ):
            rows.append(
                [
                    f"{cell.case_id}/{cell.strategy}",
                    cell.status,
                    str(cell.rounds) if cell.rounds else "-",
                    cell.rank_cell,
                    cell.last_injected or "-",
                    cell.result_cell,
                ]
            )
        lines.extend(_format_table(rows))
    else:
        lines.append("(no cells yet)")
    heartbeat = _heartbeat_line(state)
    if heartbeat:
        lines.append(heartbeat)
    latency = _latency_line(state)
    if latency:
        lines.append(latency)
    return "\n".join(lines)
