"""The persistent run ledger: an append-only JSONL campaign history.

Every ``reproduce`` / ``compare`` / bench run appends one JSON object per
(strategy, case) cell to ``benchmarks/out/ledger.jsonl``.  Entries are
schema-versioned and keyed by ``(git_sha, case_id, strategy, seed,
jobs)`` so trends survive one-shot table files: the regression gate
(``tools/check_bench_regression.py --history``) and the HTML report read
them back to plot success and wall-clock trajectories across commits.

Versioning rules (see DESIGN.md §7.2):

* every entry carries ``schema``; writers always stamp the current
  :data:`SCHEMA_VERSION`;
* readers must *skip* (never fail on) blank lines, malformed JSON, and
  entries whose ``schema`` is newer than they understand — an append-only
  file shared across versions is only useful if old readers degrade
  gracefully;
* fields are only ever added, never renamed or repurposed, within one
  schema version.

Like the rest of ``repro.obs``, this module imports nothing from sibling
``repro`` packages; entries are built from duck-typed outcome objects.
"""

from __future__ import annotations

import datetime
import json
import os
import subprocess
import warnings
from typing import Iterable, Optional

SCHEMA_VERSION = 1

#: Default ledger location, shared with the bench outputs.
_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..")
)
DEFAULT_PATH = os.path.join(_REPO_ROOT, "benchmarks", "out", "ledger.jsonl")

_GIT_SHA: Optional[str] = None


def git_sha() -> str:
    """Best-effort short SHA of the checked-out commit (cached).

    Falls back to ``"unknown"`` outside a git checkout so the ledger
    still works from an installed package or an exported tree.
    """
    global _GIT_SHA
    if _GIT_SHA is None:
        try:
            _GIT_SHA = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=_REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = "unknown"
    return _GIT_SHA


def default_path() -> str:
    return DEFAULT_PATH


def make_entry(
    *,
    case_id: str,
    strategy: str,
    success: bool,
    rounds: int,
    seconds: float,
    seed: int = 0,
    jobs: int = 1,
    coverage: Optional[dict] = None,
    metrics: Optional[dict] = None,
    sha: Optional[str] = None,
) -> dict:
    """One schema-versioned ledger entry (a plain JSON-able dict)."""
    entry = {
        "schema": SCHEMA_VERSION,
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "git_sha": git_sha() if sha is None else sha,
        "case_id": case_id,
        "strategy": strategy,
        "seed": int(seed),
        "jobs": int(jobs),
        "success": bool(success),
        "rounds": int(rounds),
        "seconds": round(float(seconds), 6),
    }
    if coverage:
        entry["coverage"] = coverage
    if metrics:
        entry["metrics"] = {
            key: round(value, 9) if isinstance(value, float) else value
            for key, value in sorted(metrics.items())
        }
    return entry


def entry_from_outcome(
    outcome,
    *,
    strategy: str,
    seed: int = 0,
    jobs: int = 1,
    sha: Optional[str] = None,
) -> dict:
    """Build an entry from an ``AndurilOutcome``/``StrategyOutcome``-like
    object (anything with ``case_id``/``success``/``rounds``/``seconds``)."""
    return make_entry(
        case_id=outcome.case_id,
        strategy=strategy,
        success=outcome.success,
        rounds=outcome.rounds,
        seconds=outcome.seconds,
        seed=seed,
        jobs=jobs,
        coverage=getattr(outcome, "coverage", None),
        metrics=getattr(outcome, "metrics", None),
        sha=sha,
    )


def entry_key(entry: dict) -> tuple:
    """The identity a ledger entry is keyed by."""
    return (
        entry.get("git_sha", "unknown"),
        entry.get("case_id", ""),
        entry.get("strategy", ""),
        entry.get("seed", 0),
        entry.get("jobs", 1),
    )


def compaction_key(entry: dict) -> tuple:
    """The identity compaction retires duplicates within.

    Deliberately *excludes* ``git_sha`` (unlike :func:`entry_key`): the
    ledger grows one batch per commit under CI cache restores, so a
    per-commit key would never retire anything.  Keeping the last N per
    ``(case_id, strategy, seed, jobs)`` preserves a bounded trend window
    across commits — exactly what the report sparklines and the
    ``--history`` regression gate consume.
    """
    return (
        entry.get("case_id", ""),
        entry.get("strategy", ""),
        entry.get("seed", 0),
        entry.get("jobs", 1),
    )


def compact_entries(entries: list[dict], keep_last: int = 20) -> list[dict]:
    """Keep the last ``keep_last`` entries per :func:`compaction_key`.

    Order is preserved; the newest entries win (the ledger is
    append-only, so later lines are newer).
    """
    keep_last = max(int(keep_last), 1)
    seen: dict[tuple, int] = {}
    kept_reversed: list[dict] = []
    for entry in reversed(entries):
        key = compaction_key(entry)
        count = seen.get(key, 0)
        if count < keep_last:
            seen[key] = count + 1
            kept_reversed.append(entry)
    return kept_reversed[::-1]


def rewrite_entries(entries: Iterable[dict], path: Optional[str] = None) -> str:
    """Atomically replace the ledger's contents (compaction's writer).

    Writes a sibling temp file and ``os.replace``\\ s it over the ledger,
    so a concurrent tolerant reader sees either the old file or the new
    one — never a torn half-rewrite.
    """
    if path is None:
        path = default_path()
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    tmp_path = path + ".tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    os.replace(tmp_path, path)
    return path


def append_entries(
    entries: Iterable[dict],
    path: Optional[str] = None,
    max_entries: Optional[int] = None,
) -> str:
    """Append entries (one JSON line each), creating parent directories.

    With ``max_entries``, the file is compacted in place after the
    append whenever it holds more than that many readable entries:
    first keep-last-N per :func:`compaction_key` (N shrinking until the
    budget fits), then — if one entry per key still overflows — drop the
    oldest lines.  This is the growth guard for ledgers that survive CI
    cache restores forever.
    """
    if path is None:
        path = default_path()
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        for entry in entries:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
    if max_entries is not None and max_entries > 0:
        existing = read_entries(path)
        if len(existing) > max_entries:
            keys = {compaction_key(entry) for entry in existing}
            keep_last = max(max_entries // max(len(keys), 1), 1)
            compacted = compact_entries(existing, keep_last=keep_last)
            if len(compacted) > max_entries:
                compacted = compacted[-max_entries:]
            rewrite_entries(compacted, path=path)
    return path


def read_entries(path: Optional[str] = None) -> list[dict]:
    """Load ledger entries tolerantly.

    Blank lines, malformed JSON, non-object lines, and entries from a
    *newer* schema are skipped (with one aggregate warning), per the
    versioning rules above.  A missing file reads as an empty history.
    """
    if path is None:
        path = default_path()
    entries: list[dict] = []
    skipped = 0
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    skipped += 1
                    continue
                if not isinstance(entry, dict):
                    skipped += 1
                    continue
                try:
                    schema = int(entry.get("schema", 0))
                except (TypeError, ValueError):
                    # valid JSON, unusable schema tag (null, "two", ...)
                    skipped += 1
                    continue
                if schema > SCHEMA_VERSION:
                    skipped += 1
                    continue
                entries.append(entry)
    except OSError:
        return []
    if skipped:
        warnings.warn(
            f"{path}: skipped {skipped} unreadable or newer-schema ledger "
            f"line(s)",
            RuntimeWarning,
            stacklevel=2,
        )
    return entries
