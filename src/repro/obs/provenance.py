"""Plan provenance: why each injected instance ended up in the plan.

A reproducing plan is the end of a causal chain the trace already
recorded, event by event:

1. **evidence** — an observable appears only in the failure log, so it
   enters the relevant set at priority ``I_k = 0``; every feedback round
   that *produced* it bumps ``I_k`` (``observable.adjust`` events carry
   the old and new values);
2. **rank movement** — the site's ``F_i = min_k (L_{i,k} + I_k)`` shifts
   as its observables' priorities move, which shows up as the instance
   rising (or sinking) through the per-round windows (``explorer.rerank``
   events carry the top entries with priorities and the chosen
   observable ``k*``);
3. **plan inclusion** — the round whose window armed the instance and
   whose run actually injected it (``explorer.plan`` and ``fir.inject``
   events), satisfying the oracle.

:func:`build_plan_provenance` walks a recorded
:class:`~repro.obs.trace.TraceRecorder` plus the search's
``ExplorationResult`` and reconstructs that chain for **every** injected
instance of the reproducing plan (the single-shot instance and any
always-fire base faults).  Surfaced as ``python -m repro explain CASE``.

Like the rest of ``repro.obs``, this module imports nothing from sibling
``repro`` packages: instances are duck-typed (``site_id`` / ``exception``
/ ``occurrence``) and events come straight off the recorder.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Optional

#: Canonical soft-fault spec prefix (``repro.injection.sites`` owns the
#: format; duplicated literally here because ``repro.obs`` imports no
#: sibling packages).
_CORRUPT_PREFIX = "corrupt:"


def _corrupt_kind(spec: str) -> Optional[str]:
    """The corruption applier name of a ``corrupt:<kind>`` fault spec,
    or ``None`` for a raise-dimension (exception) spec."""
    if isinstance(spec, str) and spec.startswith(_CORRUPT_PREFIX):
        return spec[len(_CORRUPT_PREFIX):]
    return None


@dataclasses.dataclass(frozen=True)
class ProvenanceStep:
    """One link of a chain: a kind, the round it belongs to, details."""

    kind: str   # "corruption" | "evidence" | "adjust" | "rank" | "plan" | "inject"
    round_number: Optional[int]
    detail: dict

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "round": self.round_number,
            **self.detail,
        }


@dataclasses.dataclass(frozen=True)
class ProvenanceChain:
    """The recorded causal chain behind one injected instance."""

    site_id: str
    exception: str
    occurrence: int
    steps: tuple[ProvenanceStep, ...]

    @property
    def instance_id(self) -> str:
        return f"{self.site_id}!{self.exception}@{self.occurrence}"

    def to_dict(self) -> dict:
        return {
            "site_id": self.site_id,
            "exception": self.exception,
            "occurrence": self.occurrence,
            "steps": [step.to_dict() for step in self.steps],
        }

    def to_text(self) -> str:
        lines = [f"instance {self.instance_id}"]
        for step in self.steps:
            prefix = (
                f"  [round {step.round_number}]"
                if step.round_number is not None
                else "  [prepare]"
            )
            if step.kind == "corruption":
                lines.append(
                    f"{prefix} corruption: soft fault — the "
                    f"{step.detail['applier']!r} applier rewrites the env "
                    f"call's return value; modeled by external-corruption "
                    f"source node {step.detail['source_node']!r}"
                )
            elif step.kind == "evidence":
                lines.append(
                    f"{prefix} evidence: observable {step.detail['observable']!r} "
                    f"appears only in the failure log (I_k starts at 0)"
                )
            elif step.kind == "adjust":
                lines.append(
                    f"{prefix} feedback: run produced "
                    f"{step.detail['observable']!r}, I_k "
                    f"{step.detail['old']} -> {step.detail['new']}"
                )
            elif step.kind == "rank":
                lines.append(
                    f"{prefix} rank: window position "
                    f"{step.detail['window_position']}/{step.detail['window_size']}"
                    f", F_i={step.detail['priority']:g} via "
                    f"{step.detail['observable']!r}"
                )
            elif step.kind == "plan":
                verdict = (
                    "oracle satisfied"
                    if step.detail.get("satisfied")
                    else "oracle not satisfied"
                )
                lines.append(
                    f"{prefix} plan: armed at window position "
                    f"{step.detail['window_position']}/{step.detail['window_size']}"
                    f" and injected ({verdict})"
                )
            elif step.kind == "inject":
                applier = _corrupt_kind(self.exception)
                if applier is not None:
                    lines.append(
                        f"{prefix} inject: FIR corrupted the return value "
                        f"via the {applier!r} applier at virtual "
                        f"t={step.detail['virtual_time']:g}s "
                        f"(log index {step.detail['log_index']})"
                    )
                else:
                    lines.append(
                        f"{prefix} inject: FIR raised {self.exception} at "
                        f"virtual t={step.detail['virtual_time']:g}s "
                        f"(log index {step.detail['log_index']})"
                    )
            else:  # pragma: no cover - future kinds render generically
                lines.append(f"{prefix} {step.kind}: {step.detail}")
        return "\n".join(lines)


@dataclasses.dataclass(frozen=True)
class PlanProvenance:
    """Chains for every injected instance of one reproducing plan."""

    case_id: str
    chains: tuple[ProvenanceChain, ...]

    def to_dict(self) -> dict:
        return {
            "case_id": self.case_id,
            "chains": [chain.to_dict() for chain in self.chains],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    def to_text(self) -> str:
        header = f"provenance for {self.case_id or 'plan'}"
        return "\n\n".join([header] + [chain.to_text() for chain in self.chains])


def _matches(entry_site: str, entry_exc: str, entry_occ: int, instance) -> bool:
    return (
        entry_site == instance.site_id
        and entry_exc == instance.exception
        and int(entry_occ) == instance.occurrence
    )


def build_plan_provenance(recorder, result) -> PlanProvenance:
    """Reconstruct the provenance chain for each injected instance.

    ``recorder`` is the :class:`~repro.obs.trace.TraceRecorder` that was
    attached to the search; ``result`` is the ``ExplorationResult`` it
    produced.  Requires a successful search (a reproducing plan).
    """
    if not result.success or result.injected is None:
        raise ValueError("provenance requires a reproducing plan")

    # Events are appended chronologically; attribute each one to the most
    # recent rerank round so feedback adjustments land on their round.
    reranks: list[dict] = []
    adjusts_by_round: dict[int, list[dict]] = {}
    plans: list[dict] = []
    injects: list[tuple[float, dict]] = []
    current_round: Optional[int] = None
    for event in recorder.events:
        if event.name == "explorer.rerank":
            current_round = event.args.get("round")
            reranks.append({"round": current_round, **event.args})
        elif event.name == "observable.adjust":
            adjusts_by_round.setdefault(
                current_round if current_round is not None else 0, []
            ).append(dict(event.args))
        elif event.name == "explorer.plan":
            plans.append(dict(event.args))
        elif event.name == "fir.inject":
            injects.append((event.time, dict(event.args)))

    instances = [result.injected]
    if result.script is not None:
        instances.extend(result.script.extra_instances)

    chains: list[ProvenanceChain] = []
    for instance in instances:
        steps: list[ProvenanceStep] = []
        observables: list[str] = []

        # Soft faults lead with their corruption identity: the applier
        # that rewrites the env call's return value, and the external-
        # corruption source node that models it in the causal graph.
        applier = _corrupt_kind(instance.exception)
        if applier is not None:
            steps.append(
                ProvenanceStep(
                    kind="corruption",
                    round_number=None,
                    detail={
                        "applier": applier,
                        "source_node": (
                            f"extval:{instance.site_id}:{instance.exception}"
                        ),
                    },
                )
            )

        # Rank movement: every round whose recorded window slice offered
        # this instance, with its priority and chosen observable k*.
        rank_steps: list[ProvenanceStep] = []
        for rerank in reranks:
            for position, entry in enumerate(rerank.get("top", []), start=1):
                if len(entry) < 4:
                    continue
                if not _matches(entry[0], entry[1], entry[2], instance):
                    continue
                observable = entry[4] if len(entry) > 4 else ""
                if observable and observable not in observables:
                    observables.append(observable)
                rank_steps.append(
                    ProvenanceStep(
                        kind="rank",
                        round_number=rerank["round"],
                        detail={
                            "window_position": position,
                            "window_size": rerank.get("window_size", 0),
                            "priority": entry[3],
                            "observable": observable,
                        },
                    )
                )
                break

        # Plan inclusion: the committed round that armed and injected it.
        plan_steps: list[ProvenanceStep] = []
        for plan in plans:
            if _matches(
                plan.get("site", ""),
                plan.get("exception", ""),
                plan.get("occurrence", -1),
                instance,
            ):
                observable = plan.get("observable", "")
                if observable and observable not in observables:
                    observables.append(observable)
                plan_steps.append(
                    ProvenanceStep(
                        kind="plan",
                        round_number=plan.get("round"),
                        detail={
                            "window_position": plan.get("window_position", 0),
                            "window_size": plan.get("window_size", 0),
                            "priority": plan.get("priority", 0.0),
                            "observable": observable,
                            "satisfied": plan.get("satisfied", False),
                        },
                    )
                )

        # Evidence: the chosen observables' I_k trajectories — entry into
        # the relevant set, then every feedback bump the trace recorded.
        for observable in observables:
            steps.append(
                ProvenanceStep(
                    kind="evidence",
                    round_number=None,
                    detail={"observable": observable},
                )
            )
            for round_number in sorted(adjusts_by_round):
                for adjust in adjusts_by_round[round_number]:
                    if adjust.get("key") == observable:
                        steps.append(
                            ProvenanceStep(
                                kind="adjust",
                                round_number=round_number,
                                detail={
                                    "observable": observable,
                                    "old": adjust.get("old"),
                                    "new": adjust.get("new"),
                                },
                            )
                        )

        steps.extend(rank_steps)
        steps.extend(plan_steps)

        # Injection confirmation from the FIR's own (virtual-clock)
        # record.  Base faults fire on *every* round's run, so keep only
        # the final matching event — the one from the reproducing run.
        last_inject: Optional[ProvenanceStep] = None
        for virtual_time, inject in injects:
            if _matches(
                inject.get("site", ""),
                inject.get("exception", ""),
                inject.get("occurrence", -1),
                instance,
            ):
                last_inject = ProvenanceStep(
                    kind="inject",
                    round_number=None,
                    detail={
                        "virtual_time": virtual_time,
                        "log_index": inject.get("log_index", 0),
                        "base_fault": inject.get("base_fault", False),
                    },
                )
        if last_inject is not None:
            steps.append(last_inject)

        chains.append(
            ProvenanceChain(
                site_id=instance.site_id,
                exception=instance.exception,
                occurrence=instance.occurrence,
                steps=tuple(steps),
            )
        )

    return PlanProvenance(
        case_id=getattr(result.script, "case_id", ""), chains=tuple(chains)
    )
