"""The live campaign event bus: a schema-versioned structured event stream.

Where the trace layer (``repro.obs.trace``) records *after the fact* and
the ledger (``repro.obs.ledger``) keeps one line per finished campaign
cell, the bus streams typed progress events *while a campaign runs*:

* lifecycle — ``campaign.start`` / ``case.start`` / ``round.begin`` /
  ``round.end`` / ``plan.fired`` / ``case.done`` / ``campaign.done``;
* ``heartbeat`` — periodic operational stats (cache hit rate, checkpoint
  pool counters, speculation hit rate, worker liveness, and streaming
  latency histograms from :mod:`repro.obs.metrics`).

Events are plain dicts stamped with ``schema`` (the versioning rules of
DESIGN.md §7.2 apply: writers stamp :data:`SCHEMA_VERSION`, readers skip
blank/malformed/newer lines with one aggregate warning, fields are only
ever added within a version) and dispatched to pluggable sinks.  The
:class:`JsonlSink` appends one line per event with a flush after each
write, so a concurrent reader — ``python -m repro watch --follow`` via
:func:`tail_events` — never sees a torn line.

Like the trace recorder, the bus is zero-cost when off: the
:data:`NULL_BUS` singleton answers ``enabled = False`` and every emit is
a no-op, and emission sites guard field construction behind
``bus.enabled``.  Turning the bus on must not perturb exploration —
``ExplorationResult.signature()`` stays byte-identical (enforced by
``tests/core/test_bus_equivalence.py`` and the CI ``event-stream`` job).

Like the rest of ``repro.obs``, this module imports nothing from sibling
``repro`` packages; emitters pass plain values.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from typing import Callable, Iterator, Optional

from . import metrics

SCHEMA_VERSION = 1

#: Default event-stream location, next to the ledger.
_REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..", "..")
)
DEFAULT_PATH = os.path.join(_REPO_ROOT, "benchmarks", "out", "events.jsonl")

#: Required fields per event type (beyond the common ``schema``/``t``/
#: ``type``).  ``validate_event`` checks presence, not values — fields
#: are only ever added within a schema version, so extra keys are fine.
EVENT_FIELDS: dict[str, tuple[str, ...]] = {
    "campaign.start": ("cases", "strategies", "jobs", "cells"),
    "case.start": ("case_id", "strategy"),
    "round.begin": ("case_id", "strategy", "round"),
    "round.end": (
        "case_id",
        "strategy",
        "round",
        "injected",
        "satisfied",
        "rank",
        "window_size",
    ),
    "plan.fired": (
        "case_id",
        "strategy",
        "round",
        "site",
        "spec",
        "occurrence",
        "satisfied",
    ),
    "case.done": ("case_id", "strategy", "success", "rounds", "seconds"),
    "campaign.done": ("cells", "successes", "seconds"),
    "heartbeat": ("source",),
}


class EventBus:
    """In-process dispatcher of typed progress events.

    Events are built once (``schema``/``t`` stamped here) and handed to
    every sink.  A sink that raises is dropped with one warning — a bad
    disk must never take down the campaign it is observing.
    """

    enabled = True

    def __init__(self, sinks=(), heartbeat_interval: float = 1.0):
        self._sinks: list = list(sinks)
        self.heartbeat_interval = float(heartbeat_interval)

    def subscribe(self, sink) -> None:
        self._sinks.append(sink)

    def emit(self, type: str, **fields) -> dict:
        """Build, stamp, and dispatch one event; returns the event dict."""
        event = {"schema": SCHEMA_VERSION, "t": time.time(), "type": type}
        event.update(fields)
        self.forward(event)
        return event

    def forward(self, event: dict) -> None:
        """Dispatch a pre-built event without restamping.

        This is how worker-captured events reach the parent's sinks with
        their original timestamps intact.
        """
        for sink in list(self._sinks):
            try:
                sink.write(event)
            except Exception as exc:  # pragma: no cover - defensive
                self._sinks.remove(sink)
                warnings.warn(
                    f"event sink {sink!r} failed ({exc}); dropping it",
                    RuntimeWarning,
                    stacklevel=2,
                )

    def close(self) -> None:
        for sink in self._sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                try:
                    close()
                except OSError:  # pragma: no cover - defensive
                    pass
        self._sinks = []


class NullBus:
    """Disabled bus: every operation is a no-op (``NULL_RECORDER`` twin).

    Emission sites check ``bus.enabled`` before building event fields,
    so a disabled bus costs one attribute read per site.
    """

    __slots__ = ()
    enabled = False
    heartbeat_interval = float("inf")

    def subscribe(self, sink) -> None:
        pass

    def emit(self, type: str, **fields) -> dict:
        return {}

    def forward(self, event: dict) -> None:
        pass

    def close(self) -> None:
        pass


NULL_BUS = NullBus()

_ACTIVE_BUS = NULL_BUS


def active_bus():
    """The process-wide bus emission sites fall back to.

    Components take an explicit ``bus`` parameter for tests; production
    wiring sets one active bus per process (the CLI in the parent, the
    pool initializer + task setup in campaign workers).
    """
    return _ACTIVE_BUS


def set_active_bus(bus):
    """Install ``bus`` (``None`` → :data:`NULL_BUS`); returns the old one."""
    global _ACTIVE_BUS
    previous = _ACTIVE_BUS
    _ACTIVE_BUS = NULL_BUS if bus is None else bus
    return previous


class JsonlSink:
    """Crash-safe append-only JSONL sink.

    One ``sort_keys`` JSON line per event, flushed immediately: a crash
    loses at most the event being written, and a concurrent tail reader
    only ever sees whole lines (plus possibly one unterminated partial,
    which :func:`tail_events` buffers until its newline arrives).
    """

    def __init__(self, path: str, append: bool = True):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "a" if append else "w", encoding="utf-8")

    def write(self, event: dict) -> None:
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()


class MemorySink:
    """Collects events in a list — used by tests and campaign workers."""

    def __init__(self):
        self.events: list[dict] = []

    def write(self, event: dict) -> None:
        self.events.append(event)

    def close(self) -> None:
        pass


class CallbackSink:
    """Adapts a plain callable into a sink."""

    def __init__(self, callback: Callable[[dict], None]):
        self._callback = callback

    def write(self, event: dict) -> None:
        self._callback(event)


def _parse_line(line: str) -> Optional[dict]:
    """One tolerant-reader step: the event dict, or ``None`` to skip."""
    line = line.strip()
    if not line:
        return None
    try:
        event = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(event, dict):
        return None
    try:
        schema = int(event.get("schema", 0))
    except (TypeError, ValueError):
        return None
    if schema > SCHEMA_VERSION:
        return None
    return event


def read_events(path: Optional[str] = None) -> list[dict]:
    """Load an event stream tolerantly (ledger reader rules).

    Blank lines, malformed JSON, non-object lines, and newer-schema
    events are skipped with one aggregate warning; a missing file reads
    as an empty stream.
    """
    if path is None:
        path = DEFAULT_PATH
    events: list[dict] = []
    skipped = 0
    try:
        with open(path, encoding="utf-8") as handle:
            for line in handle:
                if not line.strip():
                    continue
                event = _parse_line(line)
                if event is None:
                    skipped += 1
                else:
                    events.append(event)
    except OSError:
        return []
    if skipped:
        warnings.warn(
            f"{path}: skipped {skipped} unreadable or newer-schema event "
            f"line(s)",
            RuntimeWarning,
            stacklevel=2,
        )
    return events


def tail_events(
    path: str,
    follow: bool = False,
    poll_interval: float = 0.1,
    timeout: Optional[float] = None,
) -> Iterator[dict]:
    """Stream events from ``path``, optionally following a live writer.

    Unreadable lines are skipped silently (the live view must not stall
    on one bad line).  Only newline-terminated lines are yielded: a
    partially written last line is buffered until the writer finishes
    it, so concurrent appends never produce torn events.  In follow
    mode the stream ends when a ``campaign.done`` event arrives (or
    ``timeout`` seconds pass with a campaign still unfinished); without
    ``follow`` it ends at EOF.
    """
    buffer = ""
    deadline = None if timeout is None else time.monotonic() + timeout
    handle = None
    try:
        while True:
            if handle is None:
                try:
                    handle = open(path, encoding="utf-8")
                except OSError:
                    if not follow:
                        return
                    if deadline is not None and time.monotonic() > deadline:
                        return
                    time.sleep(poll_interval)
                    continue
            chunk = handle.read()
            if chunk:
                buffer += chunk
                while "\n" in buffer:
                    line, buffer = buffer.split("\n", 1)
                    event = _parse_line(line)
                    if event is None:
                        continue
                    yield event
                    if follow and event.get("type") == "campaign.done":
                        return
            else:
                if not follow:
                    return
                if deadline is not None and time.monotonic() > deadline:
                    return
                time.sleep(poll_interval)
    finally:
        if handle is not None:
            handle.close()


def validate_event(event) -> list[str]:
    """Schema-check one event; returns a list of problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(event, dict):
        return [f"not an object: {type(event).__name__}"]
    for field in ("schema", "t", "type"):
        if field not in event:
            problems.append(f"missing common field {field!r}")
    schema = event.get("schema")
    if schema is not None and not isinstance(schema, int):
        problems.append(f"schema tag is not an integer: {schema!r}")
    event_type = event.get("type")
    if not isinstance(event_type, str):
        problems.append(f"event type is not a string: {event_type!r}")
        return problems
    required = EVENT_FIELDS.get(event_type)
    if required is None:
        problems.append(f"unknown event type {event_type!r}")
        return problems
    for field in required:
        if field not in event:
            problems.append(f"{event_type}: missing field {field!r}")
    return problems


def heartbeat_stats() -> dict:
    """Operational stats for a ``heartbeat`` event, from the metrics
    registry: cache hit rate, checkpoint pool counters, and the latency
    histogram snapshot.  Sources add their own (speculation, workers)."""
    counters = metrics.snapshot()
    cache_hits = counters.get("cache.hits", 0.0) + counters.get(
        "cache.alias_hits", 0.0
    )
    cache_misses = counters.get("cache.misses", 0.0)
    cache_total = cache_hits + cache_misses
    stats = {
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "hit_rate": round(cache_hits / cache_total, 4)
            if cache_total
            else 0.0,
        },
        "checkpoint": {
            key.split(".", 2)[2]: value
            for key, value in sorted(counters.items())
            if key.startswith("sim.checkpoint.")
        },
    }
    latency = metrics.histograms_snapshot()
    if latency:
        stats["latency"] = latency
    return stats
