"""Structured run-level tracing: spans, events, and counters.

The Explorer steers on internal feedback state — observable priorities,
temporal distances, site rankings — that used to be invisible outside
end-of-search aggregates.  A :class:`TraceRecorder` captures that state
as it evolves:

* **spans** — timed phases.  Host-side phases (per-round ``prepare`` /
  ``run`` / ``feedback`` / ``rerank``) are measured on the **wall**
  clock; anything that happens inside the deterministic simulator (the
  per-run workload execution) is stamped with **virtual** sim time, so
  re-running the same ``(seed, plan)`` yields the same virtual spans.
* **events** — instant records: every FIR injection decision with its
  matched instance, every observable-priority adjustment with the old
  and new ``I_k``, every window re-ranking with the top-k entries and
  the ground-truth site's rank (a per-round Figure 6 trajectory).
* **counters** — monotonic totals (scheduler events executed, network
  messages delivered, FIR requests, decision seconds, virtual time).

Recording is **off by default**.  Call sites hold a recorder that is
either a real :class:`TraceRecorder` or the shared :data:`NULL_RECORDER`
singleton whose methods return immediately — the no-op path allocates
nothing and takes no timestamps, so the ``(seed, plan)`` determinism and
the cost profile of the search are unchanged when tracing is disabled.

Exports: Chrome ``trace_event``-format JSON (:meth:`TraceRecorder.to_chrome`,
loadable in ``chrome://tracing`` / Perfetto), a structured JSON document
(:meth:`to_json`), a flat metrics dict (:meth:`metrics`) that flows into
``AndurilOutcome`` and ``bench_summary.json``, and a human-readable text
summary (:meth:`to_text`).
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Any, Optional

#: Clock domains.  Virtual timestamps are deterministic simulator seconds;
#: wall timestamps are host seconds relative to the recorder's creation.
WALL = "wall"
VIRTUAL = "virtual"

#: Chrome trace "process" lanes, one per clock domain.
_PID_BY_CLOCK = {WALL: 1, VIRTUAL: 2}
_LANE_NAMES = {1: "host (wall clock)", 2: "simulator (virtual clock)"}


@dataclasses.dataclass(frozen=True)
class Span:
    """A timed phase on one clock."""

    name: str
    category: str
    clock: str        # WALL or VIRTUAL
    start: float      # seconds on its clock
    duration: float   # seconds
    args: dict


@dataclasses.dataclass(frozen=True)
class Event:
    """An instant record on one clock."""

    name: str
    category: str
    clock: str
    time: float       # seconds on its clock
    args: dict


class _NullSpan:
    """Reusable no-op context manager (one shared instance, zero alloc)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every method is a no-op.

    One shared instance (:data:`NULL_RECORDER`) stands in wherever no
    recorder was configured, so instrumented code never branches on
    ``None`` and the off path performs no timing calls and no
    allocations beyond argument passing.
    """

    __slots__ = ()
    enabled = False

    def wall_now(self) -> float:
        return 0.0

    def rel(self, perf_counter_value: float) -> float:
        return 0.0

    def span(self, name: str, category: str = "", **args) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, *a, **k) -> None:
        return None

    def event(self, *a, **k) -> None:
        return None

    def count(self, name: str, delta: float = 1.0) -> None:
        return None

    def metrics(self) -> dict:
        return {}


NULL_RECORDER = NullRecorder()


class _SpanContext:
    """Context manager that records a wall-clock span on exit."""

    __slots__ = ("_recorder", "_name", "_category", "_args", "_started")

    def __init__(self, recorder: "TraceRecorder", name: str, category: str,
                 args: dict) -> None:
        self._recorder = recorder
        self._name = name
        self._category = category
        self._args = args

    def __enter__(self) -> "_SpanContext":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        recorder = self._recorder
        recorder.add_span(
            self._name,
            self._category,
            clock=WALL,
            start=self._started - recorder._origin,
            duration=time.perf_counter() - self._started,
            **self._args,
        )


class TraceRecorder:
    """Collects spans, events, and counters for one run or search."""

    enabled = True

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.events: list[Event] = []
        self.counters: dict[str, float] = {}
        #: Wall timestamps are relative to this perf_counter origin.
        self._origin = time.perf_counter()

    # ----------------------------------------------------------------- clocks

    def wall_now(self) -> float:
        """Seconds of wall time since the recorder was created."""
        return time.perf_counter() - self._origin

    def rel(self, perf_counter_value: float) -> float:
        """Convert an already-sampled ``time.perf_counter()`` value.

        Instrumented code that times a phase anyway can reuse its own
        samples instead of paying extra clock reads.
        """
        return perf_counter_value - self._origin

    # -------------------------------------------------------------- recording

    def span(self, name: str, category: str = "", **args) -> _SpanContext:
        """Context manager recording a wall-clock span around a block."""
        return _SpanContext(self, name, category, args)

    def add_span(
        self,
        name: str,
        category: str = "",
        *,
        clock: str = WALL,
        start: float = 0.0,
        duration: float = 0.0,
        **args,
    ) -> None:
        self.spans.append(Span(name, category, clock, start, duration, args))

    def event(
        self,
        name: str,
        category: str = "",
        *,
        clock: str = WALL,
        ts: Optional[float] = None,
        **args,
    ) -> None:
        if ts is None:
            ts = self.wall_now() if clock == WALL else 0.0
        self.events.append(Event(name, category, clock, ts, args))

    def count(self, name: str, delta: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + delta

    # -------------------------------------------------------------- reporting

    def metrics(self) -> dict:
        """Flat metrics dict: counters plus per-span-name aggregates."""
        out: dict[str, float] = dict(self.counters)
        totals: dict[str, float] = {}
        counts: dict[str, int] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0.0) + span.duration
            counts[span.name] = counts.get(span.name, 0) + 1
        for name in sorted(totals):
            out[f"span.{name}.seconds"] = totals[name]
            out[f"span.{name}.count"] = counts[name]
        out["event_count"] = len(self.events)
        return out

    # --------------------------------------------------------------- exports

    def to_chrome(self) -> dict:
        """The Chrome ``trace_event`` JSON object format.

        Wall-clock records land in pid 1 ("host"), virtual-clock records
        in pid 2 ("simulator"); both lanes' timestamps are microseconds
        on their own clock.
        """
        trace_events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
            for pid, label in sorted(_LANE_NAMES.items())
        ]
        for span in self.spans:
            trace_events.append(
                {
                    "name": span.name,
                    "cat": span.category or "default",
                    "ph": "X",
                    "ts": span.start * 1e6,
                    "dur": span.duration * 1e6,
                    "pid": _PID_BY_CLOCK.get(span.clock, 1),
                    "tid": 0,
                    "args": _jsonable(span.args),
                }
            )
        for event in self.events:
            trace_events.append(
                {
                    "name": event.name,
                    "cat": event.category or "default",
                    "ph": "i",
                    "s": "p",
                    "ts": event.time * 1e6,
                    "pid": _PID_BY_CLOCK.get(event.clock, 1),
                    "tid": 0,
                    "args": _jsonable(event.args),
                }
            )
        trace_events.append(
            {
                "name": "metrics",
                "cat": "summary",
                "ph": "i",
                "s": "g",
                "ts": self.wall_now() * 1e6,
                "pid": 1,
                "tid": 0,
                "args": _jsonable(self.metrics()),
            }
        )
        return {"traceEvents": trace_events, "displayTimeUnit": "ms"}

    def to_json(self) -> dict:
        """A structured document: spans, events, and the metrics dict."""
        return {
            "schema": 1,
            "spans": [dataclasses.asdict(span) for span in self.spans],
            "events": [dataclasses.asdict(event) for event in self.events],
            "metrics": self.metrics(),
        }

    def to_text(self) -> str:
        """Human-readable summary: counters, span totals, key events."""
        lines = ["== counters =="]
        for name, value in sorted(self.counters.items()):
            lines.append(f"  {name} = {value:g}")
        lines.append("== spans (total seconds by name) ==")
        metrics = self.metrics()
        for key in sorted(metrics):
            if key.startswith("span.") and key.endswith(".seconds"):
                name = key[len("span."):-len(".seconds")]
                count = int(metrics[f"span.{name}.count"])
                lines.append(f"  {name}: {metrics[key]:.6f}s over {count} span(s)")
        lines.append(f"== events ({len(self.events)}) ==")
        for event in self.events:
            args = json.dumps(_jsonable(event.args), sort_keys=True)
            lines.append(
                f"  [{event.clock} {event.time:.6f}s] {event.name} {args}"
            )
        return "\n".join(lines)


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of arg values to JSON-serializable shapes."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)
