"""``repro.obs`` — run-level tracing and metrics.

This package is imported by the simulator, the FIR, the Explorer, and
the bench harness, so it must stay dependency-free within ``repro``
(it imports nothing from sibling packages).
"""

from . import metrics
from .trace import (
    NULL_RECORDER,
    VIRTUAL,
    WALL,
    Event,
    NullRecorder,
    Span,
    TraceRecorder,
)

__all__ = [
    "Event",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "TraceRecorder",
    "VIRTUAL",
    "WALL",
    "metrics",
]
