"""``repro.obs`` — run-level tracing and metrics.

This package is imported by the simulator, the FIR, the Explorer, and
the bench harness, so it must stay dependency-free within ``repro``
(it imports nothing from sibling packages).
"""

from . import ledger, metrics
from .coverage import (
    NULL_COVERAGE,
    CoverageSummary,
    CoverageTracker,
    NullCoverageTracker,
    RoundCoverage,
    enumerate_fault_space,
    occurrences_from_trace,
)
from .provenance import (
    PlanProvenance,
    ProvenanceChain,
    ProvenanceStep,
    build_plan_provenance,
)
from .report import render_report, write_report
from .trace import (
    NULL_RECORDER,
    VIRTUAL,
    WALL,
    Event,
    NullRecorder,
    Span,
    TraceRecorder,
)

__all__ = [
    "CoverageSummary",
    "CoverageTracker",
    "Event",
    "NULL_COVERAGE",
    "NULL_RECORDER",
    "NullCoverageTracker",
    "NullRecorder",
    "PlanProvenance",
    "ProvenanceChain",
    "ProvenanceStep",
    "RoundCoverage",
    "Span",
    "TraceRecorder",
    "VIRTUAL",
    "WALL",
    "build_plan_provenance",
    "enumerate_fault_space",
    "ledger",
    "metrics",
    "occurrences_from_trace",
    "render_report",
    "write_report",
]
