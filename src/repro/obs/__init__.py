"""``repro.obs`` — run-level tracing and metrics.

This package is imported by the simulator, the FIR, the Explorer, and
the bench harness, so it must stay dependency-free within ``repro``
(it imports nothing from sibling packages).
"""

from . import ledger, metrics
from .bus import (
    NULL_BUS,
    CallbackSink,
    EventBus,
    JsonlSink,
    MemorySink,
    NullBus,
    active_bus,
    read_events,
    set_active_bus,
    tail_events,
    validate_event,
)
from .coverage import (
    NULL_COVERAGE,
    CoverageSummary,
    CoverageTracker,
    NullCoverageTracker,
    RoundCoverage,
    enumerate_fault_space,
    occurrences_from_trace,
)
from .provenance import (
    PlanProvenance,
    ProvenanceChain,
    ProvenanceStep,
    build_plan_provenance,
)
from .report import render_report, write_report
from .trace import (
    NULL_RECORDER,
    VIRTUAL,
    WALL,
    Event,
    NullRecorder,
    Span,
    TraceRecorder,
)

__all__ = [
    "CallbackSink",
    "CoverageSummary",
    "CoverageTracker",
    "Event",
    "EventBus",
    "JsonlSink",
    "MemorySink",
    "NULL_BUS",
    "NULL_COVERAGE",
    "NULL_RECORDER",
    "NullBus",
    "NullCoverageTracker",
    "NullRecorder",
    "PlanProvenance",
    "ProvenanceChain",
    "ProvenanceStep",
    "RoundCoverage",
    "Span",
    "TraceRecorder",
    "VIRTUAL",
    "WALL",
    "active_bus",
    "build_plan_provenance",
    "enumerate_fault_space",
    "ledger",
    "metrics",
    "occurrences_from_trace",
    "read_events",
    "render_report",
    "set_active_bus",
    "tail_events",
    "validate_event",
    "write_report",
]
