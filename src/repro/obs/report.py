"""Self-contained HTML campaign report (``python -m repro report``).

Aggregates everything the bench campaigns leave under ``benchmarks/out/``
— the tables (``table*.txt`` / ``figure6*.txt`` / ``ablation*.txt``),
``bench_summary.json``, the run ledger (``ledger.jsonl``), and any
exported traces (``trace_*.json``) — into **one** HTML file with no
external assets: styling is an inline ``<style>`` block and every chart
is inline SVG.  The file opens offline in any browser.

Strictly standard library (checked by a test that walks this module's
imports); like the rest of ``repro.obs`` it imports nothing from sibling
``repro`` packages.  Case→system grouping is passed in by the caller.
"""

from __future__ import annotations

import dataclasses
import glob
import html
import json
import os
from typing import Optional

from . import ledger as ledger_mod

#: Sections rendered from plain-text table artifacts, in display order.
_TABLE_FILES = [
    ("Table 1 — fault sites", "table1_fault_sites.txt"),
    ("Table 2 — efficacy", "table2_efficacy.txt"),
    ("Table 3 — sensitivity", "table3_sensitivity.txt"),
    ("Table 4 — performance", "table4_performance.txt"),
    ("Table 5 — stack-trace baseline", "table5_stacktrace.txt"),
    ("Table 6 — new root causes", "table6_new_root_causes.txt"),
    ("Table 7 — static analysis", "table7_static_analysis.txt"),
    ("Figure 6 — rank trajectory", "figure6_rank_trajectory.txt"),
    ("Ablation — design choices", "ablation_design_choices.txt"),
    ("Ablation — lint prior", "ablation_lint_prior.txt"),
    ("Lint detectors", "table_lint_detectors.txt"),
    ("Parallel bench", "bench_parallel.txt"),
]


@dataclasses.dataclass
class ReportInputs:
    """Everything the renderer needs, already loaded from disk."""

    out_dir: str
    summary: Optional[dict]                      # bench_summary.json
    ledger_entries: list[dict]                   # ledger.jsonl
    tables: list[tuple[str, str]]                # (title, text)
    trajectories: dict[str, list[tuple[int, int]]]  # trace file -> (round, rank)
    systems: dict[str, str]                      # case_id -> system name


def _default_out_dir() -> str:
    return os.path.join(ledger_mod._REPO_ROOT, "benchmarks", "out")


def collect_report_inputs(
    out_dir: Optional[str] = None,
    systems: Optional[dict[str, str]] = None,
    ledger_path: Optional[str] = None,
) -> ReportInputs:
    """Load every artifact the report draws from; absent ones stay empty."""
    out_dir = _default_out_dir() if out_dir is None else out_dir
    summary: Optional[dict] = None
    try:
        with open(
            os.path.join(out_dir, "bench_summary.json"), encoding="utf-8"
        ) as handle:
            loaded = json.load(handle)
            summary = loaded if isinstance(loaded, dict) else None
    except (OSError, json.JSONDecodeError):
        summary = None

    if ledger_path is None:
        ledger_path = os.path.join(out_dir, "ledger.jsonl")
    entries = ledger_mod.read_entries(ledger_path)

    tables: list[tuple[str, str]] = []
    for title, filename in _TABLE_FILES:
        try:
            with open(os.path.join(out_dir, filename), encoding="utf-8") as handle:
                tables.append((title, handle.read().rstrip("\n")))
        except OSError:
            continue

    trajectories: dict[str, list[tuple[int, int]]] = {}
    for path in sorted(glob.glob(os.path.join(out_dir, "trace_*.json"))):
        points = _rank_trajectory_from_trace(path)
        if points:
            trajectories[os.path.basename(path)] = points

    return ReportInputs(
        out_dir=out_dir,
        summary=summary,
        ledger_entries=entries,
        tables=tables,
        trajectories=trajectories,
        systems=dict(systems or {}),
    )


def _rank_trajectory_from_trace(path: str) -> list[tuple[int, int]]:
    """(round, ground-truth rank) points from an exported trace file.

    Understands both export shapes: Chrome ``trace_event`` JSON (rerank
    instants inside ``traceEvents``) and the structured ``to_json``
    document (rerank entries inside ``events``).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
    except (OSError, json.JSONDecodeError):
        return []
    if not isinstance(document, dict):
        return []
    records = document.get("traceEvents", document.get("events", []))
    points: list[tuple[int, int]] = []
    for record in records:
        if not isinstance(record, dict) or record.get("name") != "explorer.rerank":
            continue
        args = record.get("args", {})
        round_number = args.get("round")
        rank = args.get("rank")
        if isinstance(round_number, int) and isinstance(rank, int) and rank > 0:
            points.append((round_number, rank))
    points.sort()
    return points


# ------------------------------------------------------------------ SVG bits


def _polyline_svg(
    points: list[tuple[float, float]],
    width: int = 320,
    height: int = 80,
    label: str = "",
) -> str:
    """One polyline chart; y grows upward, axes normalized to the data."""
    if not points:
        return "<em>no data</em>"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_span = (max(xs) - min(xs)) or 1.0
    y_span = (max(ys) - min(ys)) or 1.0
    pad = 6
    coords = " ".join(
        f"{pad + (x - min(xs)) / x_span * (width - 2 * pad):.1f},"
        f"{height - pad - (y - min(ys)) / y_span * (height - 2 * pad):.1f}"
        for x, y in points
    )
    title = f"<title>{html.escape(label)}</title>" if label else ""
    return (
        f'<svg width="{width}" height="{height}" viewBox="0 0 {width} {height}"'
        f' role="img">{title}'
        f'<rect width="{width}" height="{height}" class="plot"/>'
        f'<polyline points="{coords}" class="line"/></svg>'
    )


def _sparkline_svg(values: list[float], flags: list[bool]) -> str:
    """A tiny bar sparkline; failed runs (flag False) render highlighted."""
    if not values:
        return "<em>no runs</em>"
    width, height, gap = 4, 24, 2
    top = max(values) or 1.0
    bars = []
    for index, (value, success) in enumerate(zip(values, flags)):
        bar = max(2.0, value / top * height)
        css = "bar" if success else "bar fail"
        bars.append(
            f'<rect x="{index * (width + gap)}" y="{height - bar:.1f}" '
            f'width="{width}" height="{bar:.1f}" class="{css}">'
            f"<title>{value:.3g}s{'' if success else ' (failed)'}</title></rect>"
        )
    total = len(values) * (width + gap)
    return (
        f'<svg width="{total}" height="{height}" '
        f'viewBox="0 0 {total} {height}">{"".join(bars)}</svg>'
    )


def _coverage_cell(coverage: dict) -> str:
    """One coverage-map cell: planned fraction as color, numbers as text."""
    planned = float(coverage.get("planned_fraction", 0.0))
    fired = float(coverage.get("fired_fraction", 0.0))
    # Higher planned fraction = more of the space touched = hotter cell.
    hue = int(120 * (1.0 - min(planned, 1.0)))  # green → red
    return (
        f'<td style="background:hsl({hue},70%,85%)" '
        f'title="space={coverage.get("space", 0)} '
        f'planned={coverage.get("planned", 0)} fired={coverage.get("fired", 0)} '
        f'noop={coverage.get("noop", 0)}">'
        f"{planned * 100:.1f}% / {fired * 100:.1f}%</td>"
    )


# ---------------------------------------------------------------- rendering


_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2rem;
       max-width: 72rem; color: #1c2733; }
h1 { border-bottom: 2px solid #1c2733; padding-bottom: .3rem; }
h2 { margin-top: 2rem; border-bottom: 1px solid #c5ccd3; }
table { border-collapse: collapse; margin: .6rem 0; font-size: .85rem; }
th, td { border: 1px solid #c5ccd3; padding: .25rem .55rem; text-align: right; }
th { background: #eef1f4; }
td.name, th.name { text-align: left; }
pre { background: #f6f8fa; border: 1px solid #d8dee4; padding: .7rem;
      overflow-x: auto; font-size: .78rem; }
svg .plot { fill: #f6f8fa; stroke: #d8dee4; }
svg .line { fill: none; stroke: #2563b0; stroke-width: 1.5; }
svg .bar { fill: #2563b0; }
svg .bar.fail { fill: #c23b3b; }
.empty { color: #77808a; font-style: italic; }
.meta { color: #55606b; font-size: .85rem; }
"""


def _section(title: str, body: str) -> str:
    return f"<h2>{html.escape(title)}</h2>\n{body}\n"


def _empty(note: str) -> str:
    return f'<p class="empty">{html.escape(note)}</p>'


def _render_summary(summary: Optional[dict]) -> str:
    if not summary:
        return _empty(
            "bench_summary.json not found — run the benchmark suite first "
            "(PYTHONPATH=src python -m pytest benchmarks -q)."
        )
    rows = [
        ("cases", summary.get("case_count", 0)),
        ("successes", summary.get("successes", 0)),
        ("median rounds", summary.get("median_rounds", 0)),
        ("median seconds", summary.get("median_seconds", 0.0)),
        ("total seconds", summary.get("total_seconds", 0.0)),
    ]
    cells = "".join(
        f'<tr><td class="name">{html.escape(str(k))}</td><td>{v}</td></tr>'
        for k, v in rows
    )
    out = f"<table><tbody>{cells}</tbody></table>"
    counters = summary.get("counters") or {}
    if counters:
        counter_rows = "".join(
            f'<tr><td class="name">{html.escape(str(name))}</td>'
            f"<td>{value:g}</td></tr>"
            for name, value in sorted(counters.items())
        )
        out += (
            "<details><summary>operational counters</summary>"
            f"<table><tbody>{counter_rows}</tbody></table></details>"
        )
    return out


def _stats_table(stats: dict) -> str:
    """One counters dict as a small two-column table (rates as %)."""
    rows = []
    for name, value in sorted(stats.items()):
        if isinstance(value, float) and name.endswith("_rate"):
            rendered = f"{value * 100:.1f}%"
        elif isinstance(value, float):
            rendered = f"{value:g}"
        else:
            rendered = str(value)
        rows.append(
            f'<tr><td class="name">{html.escape(str(name))}</td>'
            f"<td>{html.escape(rendered)}</td></tr>"
        )
    return f'<table><tbody>{"".join(rows)}</tbody></table>'


def _render_runner_stats(summary: Optional[dict]) -> str:
    """Cache, checkpoint-pool, and latency sections of the summary.

    These sections only exist when the corresponding runner knob was on
    (see ``repro.bench.summary``), so each block renders conditionally.
    """
    summary = summary or {}
    blocks: list[str] = []
    cache = summary.get("cache")
    if isinstance(cache, dict) and cache:
        blocks.append("<h3>Run cache</h3>" + _stats_table(cache))
    checkpoint = summary.get("checkpoint")
    if isinstance(checkpoint, dict) and checkpoint:
        blocks.append("<h3>Checkpoint pool</h3>" + _stats_table(checkpoint))
    latency = summary.get("latency")
    if isinstance(latency, dict) and latency:
        rows = []
        for name, quantiles in sorted(latency.items()):
            if not isinstance(quantiles, dict):
                continue
            rows.append(
                f'<tr><td class="name">{html.escape(str(name))}</td>'
                f"<td>{quantiles.get('count', 0)}</td>"
                + "".join(
                    f"<td>{float(quantiles.get(q, 0.0)):.4f}</td>"
                    for q in ("mean", "p50", "p90", "p99")
                )
                + "</tr>"
            )
        blocks.append(
            "<h3>Latency histograms</h3>"
            '<table><thead><tr><th class="name">metric</th><th>count</th>'
            "<th>mean</th><th>p50</th><th>p90</th><th>p99</th></tr></thead>"
            f'<tbody>{"".join(rows)}</tbody></table>'
        )
    if not blocks:
        return _empty(
            "no cache/checkpoint/latency sections in bench_summary.json — "
            "produced by campaigns run with those runner knobs on."
        )
    return "".join(blocks)


def _render_coverage(
    summary: Optional[dict], systems: dict[str, str]
) -> str:
    coverage = (summary or {}).get("coverage") or {}
    if not coverage:
        return _empty(
            "no coverage accounting in bench_summary.json — produced by "
            "campaigns run with coverage tracking on (the default)."
        )
    strategies = list(coverage)
    cases: list[str] = []
    for per_case in coverage.values():
        for case_id in per_case:
            if case_id not in cases:
                cases.append(case_id)
    cases.sort(key=lambda c: (len(c), c))
    header = "".join(
        f"<th>{html.escape(strategy)}</th>" for strategy in strategies
    )
    rows = []
    for case_id in cases:
        system = systems.get(case_id, "")
        label = f"{case_id} ({system})" if system else case_id
        cells = []
        for strategy in strategies:
            cell = coverage[strategy].get(case_id)
            cells.append(_coverage_cell(cell) if cell else "<td>—</td>")
        rows.append(
            f'<tr><td class="name">{html.escape(label)}</td>{"".join(cells)}</tr>'
        )
    legend = (
        '<p class="meta">Cell = planned% / fired% of the enumerated fault '
        "space; greener cells touched less of the space before stopping.</p>"
    )
    return (
        legend
        + f'<table><thead><tr><th class="name">case</th>{header}</tr></thead>'
        + f'<tbody>{"".join(rows)}</tbody></table>'
        + _render_coverage_curves(coverage)
    )


def _render_coverage_curves(coverage: dict) -> str:
    """Per-case planned-coverage-vs-round curves for the ANDURIL runs."""
    anduril = coverage.get("anduril") or {}
    charts = []
    for case_id, cell in anduril.items():
        rounds = cell.get("rounds") or []
        space = float(cell.get("space", 0)) or 1.0
        points = [
            (float(entry[0]), float(entry[2]) / space)
            for entry in rounds
            if isinstance(entry, list) and len(entry) >= 5
        ]
        if len(points) < 2:
            continue
        charts.append(
            f"<figure><figcaption>{html.escape(case_id)} — planned fraction "
            f"by round</figcaption>"
            f"{_polyline_svg(points, label=case_id)}</figure>"
        )
    if not charts:
        return ""
    return "<h3>Coverage curves</h3>" + "".join(charts)


def _render_ledger(entries: list[dict]) -> str:
    if not entries:
        return _empty(
            "ledger.jsonl not found or empty — reproduce/compare/bench runs "
            "append to it."
        )
    by_cell: dict[tuple[str, str], list[dict]] = {}
    for entry in entries:
        key = (str(entry.get("case_id", "")), str(entry.get("strategy", "")))
        by_cell.setdefault(key, []).append(entry)
    rows = []
    for (case_id, strategy), cell_entries in sorted(
        by_cell.items(), key=lambda item: (len(item[0][0]), item[0])
    ):
        seconds = [float(e.get("seconds", 0.0)) for e in cell_entries]
        flags = [bool(e.get("success")) for e in cell_entries]
        latest = cell_entries[-1]
        rows.append(
            f'<tr><td class="name">{html.escape(case_id)}</td>'
            f'<td class="name">{html.escape(strategy)}</td>'
            f"<td>{len(cell_entries)}</td>"
            f"<td>{sum(flags)}/{len(flags)}</td>"
            f"<td>{latest.get('rounds', 0)}</td>"
            f"<td>{float(latest.get('seconds', 0.0)):.3f}</td>"
            f'<td class="name">{html.escape(str(latest.get("git_sha", "")))}</td>'
            f'<td class="name">{_sparkline_svg(seconds, flags)}</td></tr>'
        )
    return (
        f'<p class="meta">{len(entries)} entries across {len(by_cell)} '
        "(case, strategy) cells; sparkline bars are per-run wall seconds, "
        "red bars failed.</p>"
        '<table><thead><tr><th class="name">case</th>'
        '<th class="name">strategy</th><th>runs</th><th>successes</th>'
        "<th>last rounds</th><th>last seconds</th>"
        '<th class="name">last sha</th><th class="name">trend</th>'
        f'</tr></thead><tbody>{"".join(rows)}</tbody></table>'
    )


def _render_trajectories(trajectories: dict[str, list[tuple[int, int]]]) -> str:
    if not trajectories:
        return _empty(
            "no trace_*.json exports found — produce one with "
            "PYTHONPATH=src python -m repro trace CASE --out "
            "benchmarks/out/trace_CASE.json."
        )
    charts = []
    for name, points in trajectories.items():
        floats = [(float(x), float(-y)) for x, y in points]  # rank 1 on top
        charts.append(
            f"<figure><figcaption>{html.escape(name)} — ground-truth site "
            f"rank by round (rank {min(y for _, y in points)}–"
            f"{max(y for _, y in points)})</figcaption>"
            f"{_polyline_svg(floats, label=name)}</figure>"
        )
    return "".join(charts)


def _render_tables(tables: list[tuple[str, str]]) -> str:
    if not tables:
        return _empty("no table artifacts under benchmarks/out/.")
    sections = []
    for title, text in tables:
        sections.append(
            f"<details open><summary>{html.escape(title)}</summary>"
            f"<pre>{html.escape(text)}</pre></details>"
        )
    return "".join(sections)


def render_report(inputs: ReportInputs) -> str:
    """The full report as one self-contained HTML document string."""
    body = [
        "<h1>repro campaign report</h1>",
        f'<p class="meta">artifacts: {html.escape(inputs.out_dir)} · '
        f"commit {html.escape(ledger_mod.git_sha())}</p>",
        _section("Campaign summary", _render_summary(inputs.summary)),
        _section(
            "Fault-space coverage",
            _render_coverage(inputs.summary, inputs.systems),
        ),
        _section("Runner stats", _render_runner_stats(inputs.summary)),
        _section("Run ledger trends", _render_ledger(inputs.ledger_entries)),
        _section(
            "Rank trajectories (Figure 6)",
            _render_trajectories(inputs.trajectories),
        ),
        _section("Tables", _render_tables(inputs.tables)),
    ]
    return (
        "<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">"
        "<title>repro campaign report</title>"
        f"<style>{_STYLE}</style></head><body>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )


def write_report(
    path: Optional[str] = None,
    out_dir: Optional[str] = None,
    systems: Optional[dict[str, str]] = None,
) -> str:
    """Render and write the report; returns the path written."""
    if path is None:
        path = os.path.join(_default_out_dir(), "report.html")
    inputs = collect_report_inputs(out_dir=out_dir, systems=systems)
    directory = os.path.dirname(os.path.abspath(path))
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(render_report(inputs))
    return path
