"""Process-wide operational counters and streaming histograms.

A tiny metrics registry for infrastructure-level signals that do not
belong to any single run's :class:`~repro.obs.trace.TraceRecorder` —
e.g. how often the campaign process pool degraded to inline execution.
Counters are process-local, but not process-lost: campaign workers
capture a per-task :func:`delta_since` snapshot that rides back on the
pickled result, and the parent :func:`merge`\\ s it into its own registry
— so campaign-level totals survive the process boundary.  Bumps are
cheap enough to do unconditionally.

Alongside the counters, :func:`observe` feeds streaming histograms of
latency distributions (round latency, run latency, feedback seconds).
They use fixed logarithmic buckets — ~15 % relative resolution, a few
dozen buckets over the microsecond-to-hour range — so quantiles
(:func:`histograms_snapshot`) are computed without retaining samples,
and worker histograms merge exactly (bucket-wise addition) across the
process boundary next to the counter deltas.
"""

from __future__ import annotations

import math

_counters: dict[str, float] = {}

#: Log-bucket base: consecutive bucket boundaries differ by ~15 %, which
#: bounds quantile error to the same ratio — plenty for p50/p90/p99 of
#: wall-clock latencies.
_BUCKET_BASE = 1.15
_LOG_BASE = math.log(_BUCKET_BASE)
_MIN_VALUE = 1e-6

#: name -> {"count": int, "sum": float, "buckets": {index: count}}
_histograms: dict[str, dict] = {}


def increment(name: str, delta: float = 1.0) -> float:
    """Add ``delta`` to counter ``name`` and return the new value."""
    value = _counters.get(name, 0.0) + delta
    _counters[name] = value
    return value


def get(name: str) -> float:
    return _counters.get(name, 0.0)


def snapshot() -> dict[str, float]:
    """A copy of all counters (for summaries and tests)."""
    return dict(_counters)


def delta_since(baseline: dict[str, float]) -> dict[str, float]:
    """Counter movement since a previous :func:`snapshot` (zeros omitted).

    This is the worker side of cross-process aggregation: snapshot before
    a task, run it, and ship ``delta_since(before)`` with the result so
    the parent can :func:`merge` exactly this task's contribution even
    when one worker process runs many tasks.
    """
    delta: dict[str, float] = {}
    for name, value in _counters.items():
        moved = value - baseline.get(name, 0.0)
        if moved:
            delta[name] = moved
    return delta


def merge(counters: dict[str, float]) -> None:
    """Add another registry's counters (or a delta) into this process."""
    for name, value in counters.items():
        _counters[name] = _counters.get(name, 0.0) + value


def _bucket_index(value: float) -> int:
    return int(math.floor(math.log(max(value, _MIN_VALUE)) / _LOG_BASE))


def _bucket_upper(index: int) -> float:
    """Upper boundary of bucket ``index`` — the quantile estimate."""
    return _BUCKET_BASE ** (index + 1)


def observe(name: str, value: float) -> None:
    """Record one sample into the streaming histogram ``name``."""
    histogram = _histograms.get(name)
    if histogram is None:
        histogram = {"count": 0, "sum": 0.0, "buckets": {}}
        _histograms[name] = histogram
    index = _bucket_index(value)
    histogram["count"] += 1
    histogram["sum"] += value
    histogram["buckets"][index] = histogram["buckets"].get(index, 0) + 1


def _quantile(buckets: dict[int, int], count: int, q: float) -> float:
    """Quantile estimate by cumulative walk over the log buckets."""
    target = q * count
    seen = 0
    for index in sorted(buckets):
        seen += buckets[index]
        if seen >= target:
            return _bucket_upper(index)
    return _bucket_upper(max(buckets)) if buckets else 0.0


def histograms_snapshot() -> dict[str, dict]:
    """Quantile summaries of every histogram (for heartbeats/summaries).

    Returns ``{name: {count, mean, p50, p90, p99}}`` with quantiles
    rounded to the bucket resolution.
    """
    summary: dict[str, dict] = {}
    for name, histogram in sorted(_histograms.items()):
        count = histogram["count"]
        if not count:
            continue
        buckets = histogram["buckets"]
        summary[name] = {
            "count": count,
            "mean": round(histogram["sum"] / count, 6),
            "p50": round(_quantile(buckets, count, 0.50), 6),
            "p90": round(_quantile(buckets, count, 0.90), 6),
            "p99": round(_quantile(buckets, count, 0.99), 6),
        }
    return summary


def histograms_raw() -> dict[str, dict]:
    """Raw bucket state, picklable/JSON-able — the worker-shipping form.

    Bucket indices are stringified so the payload survives a JSON round
    trip unchanged; :func:`merge_histograms` accepts either form.
    """
    return {
        name: {
            "count": histogram["count"],
            "sum": histogram["sum"],
            "buckets": {
                str(index): count
                for index, count in sorted(histogram["buckets"].items())
            },
        }
        for name, histogram in sorted(_histograms.items())
    }


def histograms_delta(baseline: dict[str, dict]) -> dict[str, dict]:
    """Histogram movement since a :func:`histograms_raw` snapshot.

    The worker side of cross-process aggregation, mirroring
    :func:`delta_since`: empty movements are omitted, and the result
    feeds :func:`merge_histograms` in the parent.
    """
    delta: dict[str, dict] = {}
    for name, raw in histograms_raw().items():
        base = baseline.get(name, {})
        base_buckets = base.get("buckets", {})
        buckets = {
            index: count - int(base_buckets.get(index, 0))
            for index, count in raw["buckets"].items()
            if count - int(base_buckets.get(index, 0))
        }
        if not buckets:
            continue
        delta[name] = {
            "count": raw["count"] - int(base.get("count", 0)),
            "sum": raw["sum"] - float(base.get("sum", 0.0)),
            "buckets": buckets,
        }
    return delta


def merge_histograms(histograms: dict[str, dict]) -> None:
    """Fold another registry's :func:`histograms_raw` into this process.

    Log buckets merge exactly: bucket-wise count addition loses nothing,
    so campaign-level quantiles equal what one process would have seen.
    """
    for name, incoming in histograms.items():
        histogram = _histograms.get(name)
        if histogram is None:
            histogram = {"count": 0, "sum": 0.0, "buckets": {}}
            _histograms[name] = histogram
        histogram["count"] += int(incoming.get("count", 0))
        histogram["sum"] += float(incoming.get("sum", 0.0))
        buckets = histogram["buckets"]
        for index, count in incoming.get("buckets", {}).items():
            index = int(index)
            buckets[index] = buckets.get(index, 0) + int(count)


def reset() -> None:
    _counters.clear()
    _histograms.clear()
