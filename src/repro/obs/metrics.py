"""Process-wide operational counters.

A tiny metrics registry for infrastructure-level signals that do not
belong to any single run's :class:`~repro.obs.trace.TraceRecorder` —
e.g. how often the campaign process pool degraded to inline execution.
Counters are process-local (worker processes have their own registry;
anything a worker counts stays in the worker) and cheap enough to bump
unconditionally.
"""

from __future__ import annotations

_counters: dict[str, float] = {}


def increment(name: str, delta: float = 1.0) -> float:
    """Add ``delta`` to counter ``name`` and return the new value."""
    value = _counters.get(name, 0.0) + delta
    _counters[name] = value
    return value


def get(name: str) -> float:
    return _counters.get(name, 0.0)


def snapshot() -> dict[str, float]:
    """A copy of all counters (for summaries and tests)."""
    return dict(_counters)


def reset() -> None:
    _counters.clear()
