"""Process-wide operational counters.

A tiny metrics registry for infrastructure-level signals that do not
belong to any single run's :class:`~repro.obs.trace.TraceRecorder` —
e.g. how often the campaign process pool degraded to inline execution.
Counters are process-local, but not process-lost: campaign workers
capture a per-task :func:`delta_since` snapshot that rides back on the
pickled result, and the parent :func:`merge`\\ s it into its own registry
— so campaign-level totals survive the process boundary.  Bumps are
cheap enough to do unconditionally.
"""

from __future__ import annotations

_counters: dict[str, float] = {}


def increment(name: str, delta: float = 1.0) -> float:
    """Add ``delta`` to counter ``name`` and return the new value."""
    value = _counters.get(name, 0.0) + delta
    _counters[name] = value
    return value


def get(name: str) -> float:
    return _counters.get(name, 0.0)


def snapshot() -> dict[str, float]:
    """A copy of all counters (for summaries and tests)."""
    return dict(_counters)


def delta_since(baseline: dict[str, float]) -> dict[str, float]:
    """Counter movement since a previous :func:`snapshot` (zeros omitted).

    This is the worker side of cross-process aggregation: snapshot before
    a task, run it, and ship ``delta_since(before)`` with the result so
    the parent can :func:`merge` exactly this task's contribution even
    when one worker process runs many tasks.
    """
    delta: dict[str, float] = {}
    for name, value in _counters.items():
        moved = value - baseline.get(name, 0.0)
        if moved:
            delta[name] = moved
    return delta


def merge(counters: dict[str, float]) -> None:
    """Add another registry's counters (or a delta) into this process."""
    for name, value in counters.items():
        _counters[name] = _counters.get(name, 0.0) + value


def reset() -> None:
    _counters.clear()
