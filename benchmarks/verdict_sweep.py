"""One compare-sweep leg for the early-verdict benchmark, as a script.

``test_verdict_cutoff.py`` measures the end-to-end cutoff speedup by
running each (case, early-verdict on/off) leg in a *fresh interpreter*,
for the same reason ``ckpt_sweep.py`` does: allocator and GC aging
inflate whichever leg runs second inside one process by enough to
drown the effect.  Output is one JSON object on the last stdout line.

A leg is the reproduction workflow the cutoff targets, twice over:

1. **Search** — the two feedback searches (anduril, multiply-feedback)
   over a cold cache.  Unsatisfied rounds never truncate by design (the
   log-diff feedback needs the full log), so this phase mostly checks
   that monitoring never *hurts* a broad search; only each search's
   final satisfied round can cut.
2. **Confirmation replays** — the ground-truth plan is replayed
   :data:`CONFIRM_REPLAYS` times with the run cache bypassed, the way a
   developer iterates on a reproduced failure.  Every replay satisfies
   the oracle, so with the cutoff on every replay stops the moment the
   verdict latches — this is the leg the ``--verdict-min-speedup`` CI
   gate measures.

Both legs run the identical composition; the only difference is the
``early_verdict`` knob.  The leg emits a digest of one replay result
over *truncation-invariant* fields (oracle verdict, fired injection) so
the harness can assert the cutoff changed nothing that matters, plus
the raw outcome cells for cross-leg equality.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time

#: Round budget for each search strategy.  max_seconds stays effectively
#: unbounded so wall clock can never cut the two legs at different
#: rounds, which would break outcome equality between them.
SEARCH_ROUNDS = 40
#: Cache-bypassed replays of the ground-truth plan per leg.
CONFIRM_REPLAYS = 120


def _resolve_case(case_id: str):
    from bench_cases import bench_cases

    from repro.failures import get_case

    scaled = {c.case_id: c for c in bench_cases()}
    if case_id in scaled:
        return scaled[case_id]
    return get_case(case_id)


def run_leg(case_id: str, early_verdict: bool) -> dict:
    from repro import cache as runcache
    from repro.bench import run_anduril, run_baseline
    from repro.core.verdict import compile_cutoff
    from repro.injection.fir import InjectionPlan
    from repro.sim.cluster import execute_workload

    case = _resolve_case(case_id)
    case.failure_log()  # generated once per process; keep it out of the timing
    compiled = compile_cutoff(case.oracle) if early_verdict else None
    cache_dir = tempfile.mkdtemp(prefix="verdict-sweep-")
    try:
        runcache.reset()
        runcache.configure(enabled=True, disk_dir=cache_dir)
        cells = []
        started = time.perf_counter()
        outcome = run_anduril(
            case,
            max_rounds=SEARCH_ROUNDS,
            max_seconds=3600.0,
            checkpoint=False,
            early_verdict=early_verdict,
        )
        cells.append(["anduril", outcome.success, outcome.rounds])
        strategy_outcome = run_baseline(
            "multiply-feedback",
            case,
            max_rounds=SEARCH_ROUNDS,
            max_seconds=3600.0,
            checkpoint=False,
            early_verdict=early_verdict,
        )
        cells.append(
            ["multiply-feedback", strategy_outcome.success, strategy_outcome.rounds]
        )
        search_seconds = time.perf_counter() - started

        # Confirmation replays: re-execute the ground-truth plan with the
        # cache bypassed (a cache hit would measure nothing).  The plan
        # is identical in both legs by design, independent of what the
        # search phase happened to find.
        plan = InjectionPlan.single(case.ground_truth_instance())
        cutoffs = 0
        virtual_saved = 0.0
        result = None
        replay_started = time.perf_counter()
        for _ in range(CONFIRM_REPLAYS):
            result = execute_workload(
                case.workload,
                horizon=case.horizon,
                seed=case.seed,
                plan=plan,
                monitor=None if compiled is None else compiled.factory(),
            )
            if result.truncated_at is not None:
                cutoffs += 1
                virtual_saved += case.horizon - result.truncated_at
        replay_seconds = time.perf_counter() - replay_started
        # The cutoff may shorten the run but never change what it
        # proves: every replay of the ground truth must satisfy the
        # oracle with the injection fired, truncated or not.
        assert case.oracle.satisfied(result), case_id
        assert result.injected, case_id
        digest_fields = {
            "oracle_satisfied": True,
            "injected": result.injected,
            "instance": str(result.injected_instance),
        }
    finally:
        runcache.reset()
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "cells": cells,
        "compiles": compile_cutoff(case.oracle) is not None,
        "search_seconds": round(search_seconds, 3),
        "replay_seconds": round(replay_seconds, 3),
        "seconds": round(search_seconds + replay_seconds, 3),
        "replay_digest": digest_fields,
        "cutoffs": cutoffs,
        "virtual_seconds_saved": round(virtual_saved, 3),
    }


if __name__ == "__main__":
    print(json.dumps(run_leg(sys.argv[1], sys.argv[2] == "on")))
