"""Ablation: the lint pass as a search prior for the Explorer.

The Explorer's site priority is purely feedback-driven: F_i starts from
static distance alone and only separates candidates as observables
accumulate feedback.  The lint prior warm-starts it — sites implicated
by fault-handling defect findings get an F_i bonus proportional to the
evidence weight (``LintReport.site_weights``).

This bench runs the full search on all 22 cases with and without the
prior and compares rounds-to-reproduction and the ground-truth site's
rank in the very first round (before any feedback has arrived) — the
rank is where a static prior must show up, since several cases already
reproduce within the first window.
"""

from conftest import emit

from repro.bench import format_table, run_anduril
from repro.failures import all_cases


def first_rank(outcome):
    return outcome.rank_trajectory[0][1] if outcome.rank_trajectory else None


def compute_ablation():
    rows = []
    stats = {
        "baseline": {"success": 0, "rounds": 0, "ranks": []},
        "lint prior": {"success": 0, "rounds": 0, "ranks": []},
    }
    for case in all_cases():
        base = run_anduril(case, max_rounds=600, max_seconds=30.0)
        prior = run_anduril(
            case, max_rounds=600, max_seconds=30.0, lint_prior=True
        )
        for label, outcome in (("baseline", base), ("lint prior", prior)):
            if outcome.success:
                stats[label]["success"] += 1
                stats[label]["rounds"] += outcome.rounds
            rank = first_rank(outcome)
            if rank is not None:
                stats[label]["ranks"].append(rank)
        rows.append(
            (
                case.case_id,
                str(base.rounds) if base.success else "-",
                str(prior.rounds) if prior.success else "-",
                str(first_rank(base) or "-"),
                str(first_rank(prior) or "-"),
            )
        )
    return rows, stats


def test_lint_prior_ablation(benchmark):
    rows, stats = benchmark.pedantic(compute_ablation, rounds=1, iterations=1)
    table = format_table(
        ["case", "rounds", "rounds+prior", "rank@1", "rank@1+prior"],
        rows,
        title="Lint-prior ablation (rounds to reproduce, initial site rank)",
        align="lrrrr",
    )
    lines = []
    for label, entry in stats.items():
        mean_rank = (
            sum(entry["ranks"]) / len(entry["ranks"]) if entry["ranks"] else 0.0
        )
        lines.append(
            f"{label}: {entry['success']}/22 reproduced, "
            f"{entry['rounds']} total rounds, "
            f"mean first-round ground-truth rank {mean_rank:.1f}"
        )
    emit("ablation_lint_prior", table + "\n\n" + "\n".join(lines))

    base, prior = stats["baseline"], stats["lint prior"]
    # The prior must not cost reproductions or blow up the round count.
    assert prior["success"] >= base["success"]
    assert prior["rounds"] <= base["rounds"] * 1.5
    # On average the warm start should rank the true site no worse than
    # the cold start does.
    if base["ranks"] and prior["ranks"]:
        assert sum(prior["ranks"]) / len(prior["ranks"]) <= (
            sum(base["ranks"]) / len(base["ranks"]) + 0.5
        )
