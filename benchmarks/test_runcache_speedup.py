"""Run-cache speedup: cold vs warm full-strategy sweeps.

Runs the whole strategy roster (ANDURIL + every baseline) on one case
per mini system — the ``compare`` workload — three times: without the
cache, against a cold cache, and against the warm cache the cold pass
filled.  The warm pass must be served almost entirely from memoized
runs, and its wall clock is the PR's headline number; the measured
speedup and hit rate land in ``benchmarks/out/BENCH_runcache.json``.

Wall-clock assertions are deliberately loose (warm must beat no-cache
by well under the typically observed margin) so a loaded CI host cannot
flake the suite; the JSON artifact is the measurement of record.
"""

import dataclasses
import json
import os
import shutil
import tempfile
import time

from conftest import emit

from repro import cache as runcache
from repro.baselines import ALL_STRATEGIES
from repro.bench import format_table, run_anduril, run_baseline
from repro.bench.tables import OUT_DIR
from repro.failures import get_case

#: One representative case per mini system (kept small on purpose: the
#: benchmark measures cache behavior, not the full dataset).
CASE_IDS = ("f1", "f5", "f13", "f19", "f22")


def run_sweep():
    """One ``compare``-equivalent pass; returns its outcome signature."""
    cells = []
    for case_id in CASE_IDS:
        case = get_case(case_id)
        outcome = run_anduril(case, max_rounds=400, max_seconds=60.0)
        cells.append(("anduril", case_id, outcome.success, outcome.rounds))
        for name in ALL_STRATEGIES:
            strategy_outcome = run_baseline(
                name, case, max_rounds=300, max_seconds=60.0
            )
            cells.append(
                (name, case_id, strategy_outcome.success, strategy_outcome.rounds)
            )
    return tuple(cells)


def test_runcache_speedup():
    cache_dir = tempfile.mkdtemp(prefix="runcache-bench-")
    try:
        runcache.reset()
        started = time.perf_counter()
        nocache_signature = run_sweep()
        nocache_seconds = time.perf_counter() - started

        cache = runcache.configure(enabled=True, disk_dir=cache_dir)
        started = time.perf_counter()
        cold_signature = run_sweep()
        cold_seconds = time.perf_counter() - started
        cold_stats = dataclasses.replace(cache.stats)

        started = time.perf_counter()
        warm_signature = run_sweep()
        warm_seconds = time.perf_counter() - started
        warm_hits = cache.stats.hits - cold_stats.hits
        warm_aliases = cache.stats.alias_hits - cold_stats.alias_hits
        warm_misses = cache.stats.misses - cold_stats.misses
        warm_lookups = warm_hits + warm_aliases + warm_misses
        warm_hit_rate = (
            (warm_hits + warm_aliases) / warm_lookups if warm_lookups else 0.0
        )
    finally:
        runcache.reset()
        shutil.rmtree(cache_dir, ignore_errors=True)

    # Memoization must not move any outcome — only wall clock.
    assert cold_signature == nocache_signature
    assert warm_signature == nocache_signature

    # The warm pass re-executes nothing but uncacheable odds and ends.
    assert warm_hit_rate >= 0.95, f"warm hit rate only {warm_hit_rate:.1%}"
    # Headline: ≥30% faster than no-cache (observed: far more).
    assert warm_seconds <= nocache_seconds * 0.7, (
        f"warm sweep {warm_seconds:.2f}s vs no-cache {nocache_seconds:.2f}s"
    )

    speedup = nocache_seconds / warm_seconds if warm_seconds else float("inf")
    rows = [
        ("no-cache", f"{nocache_seconds:.2f}", "1.00x", "-"),
        (
            "cold",
            f"{cold_seconds:.2f}",
            f"{nocache_seconds / cold_seconds:.2f}x",
            f"{cold_stats.hit_rate:.1%}",
        ),
        ("warm", f"{warm_seconds:.2f}", f"{speedup:.2f}x", f"{warm_hit_rate:.1%}"),
    ]
    emit(
        "bench_runcache",
        format_table(
            ["pass", "seconds", "speedup", "hit rate"],
            rows,
            title=f"run-cache speedup ({len(CASE_IDS)} cases x "
            f"{1 + len(ALL_STRATEGIES)} strategies)",
            align="lrrr",
        ),
    )

    artifact = {
        "cases": list(CASE_IDS),
        "strategies": 1 + len(ALL_STRATEGIES),
        "nocache_seconds": round(nocache_seconds, 3),
        "cold_seconds": round(cold_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "warm_speedup_vs_nocache": round(speedup, 3),
        "cold_hit_rate": round(cold_stats.hit_rate, 6),
        "warm_hit_rate": round(warm_hit_rate, 6),
        "warm_lookups": warm_lookups,
        "warm_misses": warm_misses,
        "alias_hits_total": cache.stats.alias_hits,
        "deterministic": True,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, "BENCH_runcache.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"[saved to {path}]")
