"""Table 3: sensitivity of the two key feedback parameters.

Initial flexible-window size k ∈ {1, 3, 10} and observable priority
adjustment s ∈ {+1, +2, +10}; cells are rounds to reproduce ("-" =
budget exhausted).  The defaults (k=10, s=+1) are the highlighted rows.
"""

from conftest import emit

from repro.bench import format_table, run_anduril
from repro.failures import all_cases

SETTINGS = [
    ("k=1", dict(initial_window=1, adjustment=1)),
    ("k=3", dict(initial_window=3, adjustment=1)),
    ("k=10 (default)", dict(initial_window=10, adjustment=1)),
    ("s=+2", dict(initial_window=10, adjustment=2)),
    ("s=+10", dict(initial_window=10, adjustment=10)),
]


def compute_table3():
    cases = all_cases()
    rows = []
    success_counts = {}
    rounds_by_setting = {}
    for label, overrides in SETTINGS:
        cells = [label]
        successes = 0
        rounds = []
        for case in cases:
            outcome = run_anduril(
                case, max_rounds=600, max_seconds=30.0, **overrides
            )
            cells.append(str(outcome.rounds) if outcome.success else "-")
            if outcome.success:
                successes += 1
                rounds.append(outcome.rounds)
        rows.append(cells)
        success_counts[label] = successes
        rounds_by_setting[label] = rounds
    return cases, rows, success_counts, rounds_by_setting


def test_table3(benchmark):
    cases, rows, success_counts, rounds_by_setting = benchmark.pedantic(
        compute_table3, rounds=1, iterations=1
    )
    headers = ["Setting", *(case.case_id for case in cases)]
    emit(
        "table3_sensitivity",
        format_table(headers, rows, title="Table 3: parameter sensitivity (rounds)"),
    )
    # The paper's takeaway: the feedback algorithm is robust — every
    # setting still reproduces (almost) all failures.
    for label, successes in success_counts.items():
        assert successes >= 20, f"{label} reproduced only {successes}/22"
