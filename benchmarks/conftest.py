"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one table or figure of the paper; expensive
shared artifacts (the ANDURIL runs over all 22 cases) are computed once
per session and reused.
"""

import pytest

from repro.bench import run_anduril
from repro.failures import all_cases


@pytest.fixture(scope="session")
def cases():
    return all_cases()


_ANDURIL_CACHE = {}


@pytest.fixture(scope="session")
def anduril_outcomes(cases):
    """ANDURIL (full feedback) outcome per case, computed once."""
    if not _ANDURIL_CACHE:
        for case in cases:
            _ANDURIL_CACHE[case.case_id] = run_anduril(case)
    return dict(_ANDURIL_CACHE)


def emit(name: str, content: str) -> None:
    """Print a rendered table and persist it under benchmarks/out/."""
    from repro.bench import write_table

    print()
    print(content)
    path = write_table(name, content)
    print(f"[saved to {path}]")
