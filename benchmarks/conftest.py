"""Shared fixtures for the experiment benchmarks.

Each benchmark regenerates one table or figure of the paper; expensive
shared artifacts (the ANDURIL runs over all 22 cases) are computed once
per session and reused.  The campaign fans out across worker processes
(``REPRO_JOBS`` overrides the default of one per CPU), and its per-case
outcomes are written to ``benchmarks/out/bench_summary.json`` at session
end for the CI regression gate.
"""

import pytest

from repro.bench import resolve_jobs, run_anduril_many
from repro.bench import summary as bench_summary
from repro.failures import all_cases, get_case
from repro.obs import ledger


@pytest.fixture(scope="session")
def cases():
    return all_cases()


_ANDURIL_CACHE = {}


@pytest.fixture(scope="session")
def anduril_outcomes(cases):
    """ANDURIL (full feedback) outcome per case, computed once.

    Profiled so Table 4's decision-latency column reports measured
    values; the search outcomes themselves are profile-invariant.
    """
    if not _ANDURIL_CACHE:
        for outcome in run_anduril_many(cases, profile=True):
            _ANDURIL_CACHE[outcome.case_id] = outcome
            bench_summary.record_outcome(outcome)
    return dict(_ANDURIL_CACHE)


def pytest_sessionfinish(session, exitstatus):
    """Persist the campaign summary for tools/check_bench_regression.py,
    and append the session's ANDURIL outcomes to the run ledger."""
    if bench_summary.collected_case_count():
        path = bench_summary.write_bench_summary()
        print(f"\n[bench summary saved to {path}]")
    if _ANDURIL_CACHE:
        jobs = resolve_jobs(None)
        entries = [
            ledger.entry_from_outcome(
                outcome,
                strategy="anduril",
                seed=get_case(case_id).seed,
                jobs=jobs,
            )
            for case_id, outcome in sorted(_ANDURIL_CACHE.items())
        ]
        ledger_path = ledger.append_entries(entries)
        print(f"[run ledger: {len(entries)} entries appended to {ledger_path}]")


def emit(name: str, content: str) -> None:
    """Print a rendered table and persist it under benchmarks/out/."""
    from repro.bench import write_table

    print()
    print(content)
    path = write_table(name, content)
    print(f"[saved to {path}]")
