"""Parallel campaign engine: speedup curve and determinism invariant.

Runs the full 22-case ANDURIL campaign at ``jobs`` ∈ {1, 2, 4, 8} (capped
at twice the host's CPU count — oversubscription beyond that only adds
scheduler noise), asserts the per-case outcomes are identical at every
worker count, and writes the measured speedup curve to
``benchmarks/out/BENCH_parallel.json``.

Wall-clock speedup is hardware-dependent (a single-core runner shows
≈1x or below), so the *assertions* here cover determinism only; the JSON
artifact is the measurement of record.
"""

import json
import os
import time

from conftest import emit

from repro.bench import format_table, run_anduril_many
from repro.bench.tables import OUT_DIR
from repro.failures import all_cases

JOBS_LADDER = (1, 2, 4, 8)


def campaign_signature(outcomes):
    """Wall-clock-free identity of a campaign result."""
    return tuple(
        (o.case_id, o.success, o.rounds, tuple(o.rank_trajectory))
        for o in outcomes
    )


def test_parallel_campaign_speedup():
    cases = all_cases()
    cpus = os.cpu_count() or 1
    ladder = [j for j in JOBS_LADDER if j == 1 or j <= 2 * cpus]

    measurements = {}
    signatures = {}
    for jobs in ladder:
        started = time.perf_counter()
        outcomes = run_anduril_many(cases, jobs=jobs)
        elapsed = time.perf_counter() - started
        measurements[jobs] = elapsed
        signatures[jobs] = campaign_signature(outcomes)

    # Determinism invariant: identical tables at every worker count.
    baseline_signature = signatures[1]
    for jobs, signature in signatures.items():
        assert signature == baseline_signature, (
            f"campaign outcome at jobs={jobs} diverged from serial"
        )
    assert all(outcome[1] for outcome in baseline_signature), (
        "campaign must reproduce every case"
    )

    serial = measurements[1]
    rows = [
        (jobs, f"{seconds:.2f}", f"{serial / seconds:.2f}x")
        for jobs, seconds in measurements.items()
    ]
    emit(
        "bench_parallel",
        format_table(
            ["jobs", "seconds", "speedup"],
            rows,
            title=f"22-case campaign speedup ({cpus} CPUs)",
            align="rrr",
        ),
    )

    artifact = {
        "cpu_count": cpus,
        "cases": len(cases),
        "seconds_by_jobs": {str(j): round(s, 3) for j, s in measurements.items()},
        "speedup_by_jobs": {
            str(j): round(serial / s, 3) for j, s in measurements.items()
        },
        "deterministic": True,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, "BENCH_parallel.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"[saved to {path}]")
