"""Table 6: deeper root causes that satisfy the same failure oracle.

For the catalog cases with registered alternates, injecting the deeper
fault reproduces the same observed symptom — the phenomenon the paper
used to expose flaws in the original patches.
"""

from conftest import emit

from repro.bench import format_table
from repro.failures import all_cases
from repro.injection.fir import InjectionPlan
from repro.sim.cluster import execute_workload


def compute_table6():
    rows = []
    verified = 0
    for case in all_cases():
        if not case.alternates:
            continue
        seed = case.failure_seed if case.failure_seed is not None else case.seed
        for alternate in case.alternates:
            instance = alternate.resolve_instance(case.model())
            result = execute_workload(
                case.workload,
                horizon=case.horizon,
                seed=seed,
                plan=InjectionPlan.single(instance),
            )
            satisfied = result.injected and case.oracle.satisfied(result)
            if satisfied:
                verified += 1
            original = case.ground_truth
            rows.append(
                (
                    f"{case.case_id} ({case.issue})",
                    f"{original.exception} in {original.function}",
                    f"{alternate.exception} in {alternate.function}",
                    "same symptom" if satisfied else "NOT reproduced",
                )
            )
    return rows, verified


def test_table6(benchmark):
    rows, verified = benchmark.pedantic(compute_table6, rounds=1, iterations=1)
    emit(
        "table6_new_root_causes",
        format_table(
            ["Failure", "Original root cause", "Deeper root cause", "Oracle"],
            rows,
            title="Table 6: alternative/deeper root causes with identical symptoms",
        ),
    )
    assert rows, "expected at least one case with alternates"
    assert verified == len(rows)
