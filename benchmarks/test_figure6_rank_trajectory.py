"""Figure 6: rank of the root-cause fault site across trials (HB-25905).

The feedback loop should improve (lower) the root site's rank as
unsuccessful injections deprioritize observables that keep appearing
without reproducing the failure.
"""

from conftest import emit

from repro.bench import format_table
from repro.failures import get_case


def compute_figure6(anduril_outcomes):
    outcome = anduril_outcomes["f17"]
    return outcome


def render_series(trajectory) -> str:
    peak = max(rank for _round, rank in trajectory)
    lines = []
    for round_number, rank in trajectory:
        bar = "#" * rank
        lines.append(f"round {round_number:3d} | rank {rank:3d} | {bar}")
    return "\n".join(lines) + f"\n(peak rank {peak})"


def test_figure6(benchmark, anduril_outcomes):
    outcome = benchmark.pedantic(
        compute_figure6, args=(anduril_outcomes,), rounds=1, iterations=1
    )
    trajectory = outcome.rank_trajectory
    assert outcome.success
    assert trajectory, "rank trajectory must be recorded"
    table = format_table(
        ["round", "root-site rank"],
        trajectory,
        title="Figure 6: rank of the root-cause fault site (HBase-25905 analog)",
    )
    emit("figure6_rank_trajectory", table + "\n\n" + render_series(trajectory))

    ranks = [rank for _round, rank in trajectory]
    # The search ends with the root site at (or near) the top...
    assert ranks[-1] <= ranks[0] + 1
    # ...and the final rank is among the best seen (feedback converged).
    assert ranks[-1] <= min(ranks) + 1
