"""Lint-detector efficacy over the five mini systems.

Runs the full fault-handling rule catalog on each system package and
reports three views:

* finding counts per rule per system;
* for each of the 22 catalog failures, whether some finding implicates
  the ground-truth fault site (and which rules did);
* per-rule site precision — of the env-boundary sites a rule implicates,
  how many are a known root cause (the case's ground truth or one of its
  registered Table-6 alternates).

The seeded defect of at least 15 of the 22 cases must be flagged.
"""

from conftest import emit

from repro.analysis import analyze_package, run_lint
from repro.bench import format_table
from repro.failures import all_cases


def compute_lint_tables():
    by_pkg = {}
    for case in all_cases():
        by_pkg.setdefault(case.package, []).append(case)

    systems = []
    rule_counts = {}        # rule -> {system: findings}
    rule_sites = {}         # rule -> {system: set of env site ids}
    truth_sites = {}        # system -> set of root-cause site ids
    env_site_count = {}
    case_rows = []
    flagged = 0

    for pkg, cases in sorted(by_pkg.items()):
        system = pkg.rsplit(".", 1)[-1]
        systems.append(system)
        model = analyze_package(pkg)
        report = run_lint(model, package=pkg)
        env_sites = {env_call.site_id for env_call in model.env_calls}
        env_site_count[system] = len(env_sites)

        truths = set()
        for case in cases:
            truths.add(case.ground_truth.resolve_site(model))
            for alternate in case.alternates:
                truths.add(alternate.resolve_site(model))
        truth_sites[system] = truths

        rules_by_site = {}
        for finding in report.findings:
            rule_counts.setdefault(finding.rule, {}).setdefault(system, 0)
            rule_counts[finding.rule][system] += 1
            site_map = rule_sites.setdefault(finding.rule, {})
            for site_id in finding.site_ids:
                if site_id in env_sites:
                    site_map.setdefault(system, set()).add(site_id)
                rules_by_site.setdefault(site_id, set()).add(finding.rule)

        for case in cases:
            gt_site = case.ground_truth.resolve_site(model)
            hit_rules = sorted(rules_by_site.get(gt_site, ()))
            if hit_rules:
                flagged += 1
            case_rows.append(
                (
                    case.case_id,
                    system,
                    case.ground_truth.function,
                    "yes" if hit_rules else "NO",
                    ", ".join(hit_rules) or "-",
                )
            )

    return systems, rule_counts, rule_sites, truth_sites, env_site_count, case_rows, flagged


def test_lint_detectors(benchmark):
    (
        systems,
        rule_counts,
        rule_sites,
        truth_sites,
        env_site_count,
        case_rows,
        flagged,
    ) = benchmark.pedantic(compute_lint_tables, rounds=1, iterations=1)

    count_rows = [
        [rule_id, *(str(rule_counts[rule_id].get(system, 0)) for system in systems)]
        for rule_id in sorted(rule_counts)
    ]
    counts_table = format_table(
        ["rule", *systems],
        count_rows,
        title="Lint findings per rule per system",
        align="l" + "r" * len(systems),
    )

    precision_rows = []
    for rule_id in sorted(rule_sites):
        cells = [rule_id]
        for system in systems:
            sites = rule_sites[rule_id].get(system, set())
            if not sites:
                cells.append("-")
                continue
            hits = len(sites & truth_sites[system])
            cells.append(f"{hits}/{len(sites)}")
        precision_rows.append(cells)
    precision_table = format_table(
        ["rule", *systems],
        precision_rows,
        title=(
            "Per-rule site precision (implicated env sites that are a known "
            "root cause / implicated env sites)"
        ),
        align="l" + "r" * len(systems),
    )

    cases_table = format_table(
        ["case", "system", "root-cause fn", "flagged", "by rules"],
        case_rows,
        title="Ground-truth fault site flagged by the lint pass",
    )

    emit(
        "table_lint_detectors",
        "\n\n".join(
            [
                counts_table,
                precision_table,
                cases_table,
                f"ground truth flagged: {flagged}/22 cases",
            ]
        ),
    )

    assert flagged >= 15, f"only {flagged}/22 ground-truth sites flagged"
    # Every system should produce findings and every rule should fire
    # somewhere — a silent rule means the catalog regressed.
    for rule_id, counts in rule_counts.items():
        assert sum(counts.values()) > 0, f"rule {rule_id} never fired"
    assert len(rule_counts) >= 6
