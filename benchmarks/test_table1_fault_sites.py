"""Table 1: per-system code size and fault-site statistics.

Columns mirror the paper: lines of code, Total static fault sites in the
system, Inferred sites (ANDURIL's causal graph), and Dynamic occurrences
of the inferred sites under the cases' workloads (mean over each
system's cases).
"""

import os
import statistics

from conftest import emit

from repro.bench import format_table
from repro.failures import all_cases
from repro.failures.case import system_model

SYSTEM_ORDER = ("zookeeper", "hdfs", "hbase", "kafka", "cassandra")


def loc_of_package(package: str) -> int:
    import importlib

    module = importlib.import_module(package)
    total = 0
    for root in module.__path__:
        for entry in sorted(os.listdir(root)):
            if entry.endswith(".py"):
                with open(os.path.join(root, entry), encoding="utf-8") as handle:
                    total += sum(1 for _ in handle)
    return total


def compute_table1():
    per_system: dict[str, dict] = {}
    for case in all_cases():
        prepared = case.explorer().prepare()
        # Inferred static sites and their dynamic occurrences in the probe.
        candidate_sites = {
            entry.instance.site_id for entry in prepared.pool.ranked_entries()
        }
        dynamic = sum(
            prepared.normal_run.site_counts.get(site, 0)
            for site in candidate_sites
        )
        bucket = per_system.setdefault(
            case.system,
            {"package": case.package, "inferred": [], "dynamic": []},
        )
        bucket["inferred"].append(len(candidate_sites))
        bucket["dynamic"].append(dynamic)

    rows = []
    stats = {}
    for system in SYSTEM_ORDER:
        bucket = per_system[system]
        model = system_model(bucket["package"])
        total = model.total_fault_candidates()
        inferred = int(statistics.mean(bucket["inferred"]))
        dynamic = int(statistics.mean(bucket["dynamic"]))
        stats[system] = (total, inferred, dynamic)
        rows.append(
            (system, loc_of_package(bucket["package"]), total, inferred, dynamic)
        )
    return rows, stats


def test_table1(benchmark):
    rows, stats = benchmark.pedantic(compute_table1, rounds=1, iterations=1)
    emit(
        "table1_fault_sites",
        format_table(
            ["System", "LOC", "Total sites", "Inferred", "Dynamic"],
            rows,
            title="Table 1: fault sites per system (means over each system's cases)",
        ),
    )
    for system, (total, inferred, dynamic) in stats.items():
        # The causal graph prunes the static space (paper: 9-23% kept)...
        assert 0 < inferred < total, system
        # ...while dynamic instances blow it back up (sites run many times).
        assert dynamic >= inferred, system
