"""Table 7: static analysis performance per case.

Columns mirror the paper: lines of code analyzed, time in exception
analysis, slicing, causal chaining (mean per observable), and total.
"""

from conftest import emit

from repro.analysis.causal import CausalGraphBuilder
from repro.bench import format_table
from repro.failures import all_cases
from repro.failures.case import system_model


def loc_of_model(model) -> int:
    import importlib

    total = 0
    seen = set()
    for facts in model.modules:
        if facts.module in seen:
            continue
        seen.add(facts.module)
        module = importlib.import_module(facts.module)
        with open(module.__file__, encoding="utf-8") as handle:
            total += sum(1 for _ in handle)
    return total


def compute_table7():
    rows = []
    totals = []
    for case in all_cases():
        model = system_model(case.package)
        builder = CausalGraphBuilder(model)
        # Build from this case's relevant observables, like the Explorer.
        prepared = case.explorer().prepare()
        builder.build(prepared.observables.mapped_keys())
        timings = builder.timings
        observables = max(len(prepared.observables.mapped_keys()), 1)
        chaining_per_observable = timings.chaining_seconds / observables
        totals.append(timings.total_seconds)
        rows.append(
            (
                f"{case.case_id} ({case.issue})",
                loc_of_model(model),
                f"{timings.exception_seconds * 1e3:.1f}ms",
                f"{timings.slicing_seconds * 1e3:.2f}ms",
                f"{chaining_per_observable * 1e3:.2f}ms",
                f"{timings.total_seconds * 1e3:.1f}ms",
            )
        )
    return rows, totals


def test_table7(benchmark):
    rows, totals = benchmark.pedantic(compute_table7, rounds=1, iterations=1)
    emit(
        "table7_static_analysis",
        format_table(
            ["Failure", "LOC", "Exception", "Slicing", "Chaining/obs", "Total"],
            rows,
            title="Table 7: static analysis time breakdown",
        ),
    )
    # The static step is cheap relative to the dynamic exploration (paper:
    # 11s-344s on systems 4-5 orders of magnitude larger).
    assert all(total < 5.0 for total in totals)
