"""Table 7: static analysis performance per case.

Columns mirror the paper: lines of code analyzed, time in exception
analysis, slicing, causal chaining (mean per observable), and total —
extended with the flow pass (propagation-graph build time) and its
fault-space pruning effect (enumerated triples before/after the static
prune).  Pruning is accounting-only, so these columns report what the
coverage denominator shrinks to, not a change in search behaviour.
"""

from collections import defaultdict

from conftest import emit

from repro.analysis.causal import CausalGraphBuilder
from repro.analysis.model import graph_fault_candidates
from repro.bench import format_table
from repro.core.pruning import pruner_from_prepared
from repro.failures import all_cases
from repro.failures.case import system_model
from repro.obs.coverage import enumerate_fault_space, occurrences_from_trace


def loc_of_model(model) -> int:
    import importlib

    total = 0
    seen = set()
    for facts in model.modules:
        if facts.module in seen:
            continue
        seen.add(facts.module)
        module = importlib.import_module(facts.module)
        with open(module.__file__, encoding="utf-8") as handle:
            total += sum(1 for _ in handle)
    return total


def compute_table7():
    rows = []
    totals = []
    flow_totals = []
    by_system = defaultdict(lambda: [0, 0])  # system -> [space, pruned]
    for case in all_cases():
        model = system_model(case.package)
        builder = CausalGraphBuilder(model)
        # Build from this case's relevant observables, like the Explorer.
        explorer = case.explorer(prune="static")
        prepared = explorer.prepare()
        builder.build(prepared.observables.mapped_keys())
        timings = builder.timings
        observables = max(len(prepared.observables.mapped_keys()), 1)
        chaining_per_observable = timings.chaining_seconds / observables
        totals.append(timings.total_seconds)
        flow_totals.append(prepared.flow_graph.build_seconds)
        space = enumerate_fault_space(
            graph_fault_candidates(prepared.graph),
            occurrences_from_trace(prepared.normal_run.trace),
            max_instances_per_site=explorer.max_instances_per_site,
        )
        pruner = pruner_from_prepared(prepared.flow_graph, prepared)
        kept = pruner.prune(space)
        pruned = len(space) - len(kept)
        by_system[case.system][0] += len(space)
        by_system[case.system][1] += pruned
        rows.append(
            (
                f"{case.case_id} ({case.issue})",
                loc_of_model(model),
                f"{timings.exception_seconds * 1e3:.1f}ms",
                f"{timings.slicing_seconds * 1e3:.2f}ms",
                f"{chaining_per_observable * 1e3:.2f}ms",
                f"{timings.total_seconds * 1e3:.1f}ms",
                f"{prepared.flow_graph.build_seconds * 1e3:.1f}ms",
                len(space),
                f"{pruned} ({pruned / len(space):.0%})" if space else "0",
            )
        )
    return rows, totals, flow_totals, dict(by_system)


def test_table7(benchmark):
    rows, totals, flow_totals, by_system = benchmark.pedantic(
        compute_table7, rounds=1, iterations=1
    )
    emit(
        "table7_static_analysis",
        format_table(
            [
                "Failure",
                "LOC",
                "Exception",
                "Slicing",
                "Chaining/obs",
                "Total",
                "Flow",
                "Space",
                "Pruned",
            ],
            rows,
            title="Table 7: static analysis time breakdown",
        ),
    )
    # The static step is cheap relative to the dynamic exploration (paper:
    # 11s-344s on systems 4-5 orders of magnitude larger), and the flow
    # pass adds only milliseconds on top.
    assert all(total < 5.0 for total in totals)
    assert all(total < 5.0 for total in flow_totals)
    # The flow pass must pay for itself: at least 3 of the 5 systems shed
    # a quarter or more of their enumerated fault space.
    strong = sum(
        1
        for space, pruned in by_system.values()
        if space and pruned / space >= 0.25
    )
    assert strong >= 3, by_system
