"""Table 5: the stacktrace-injector baseline plus injected fault types.

The paper's appendix table: the fault type ANDURIL injects per failure,
and how the stacktrace-only injector fares (it works when the root cause
appears in logged traces; it fails when the fault is handled silently or
the log is noisy).
"""

from conftest import emit

from repro.bench import format_table, run_baseline
from repro.failures import all_cases


def compute_table5():
    rows = []
    successes = 0
    for case in all_cases():
        outcome = run_baseline(
            "stacktrace", case, max_rounds=300, max_seconds=8.0
        )
        if outcome.success:
            successes += 1
        rows.append(
            (
                f"{case.case_id} ({case.issue})",
                case.title[:58],
                case.ground_truth.exception,
                outcome.cell,
            )
        )
    return rows, successes


def test_table5(benchmark, anduril_outcomes):
    rows, successes = benchmark.pedantic(compute_table5, rounds=1, iterations=1)
    emit(
        "table5_stacktrace",
        format_table(
            ["Failure", "Description", "Injected fault", "Stacktrace inj."],
            rows,
            title="Table 5: failure descriptions, fault types, stacktrace-injector",
        )
        + f"\n\nstacktrace injector reproduced {successes}/22",
    )
    # Paper shape: it reproduces a strict subset (9 of 22 there).
    anduril_successes = sum(
        1 for outcome in anduril_outcomes.values() if outcome.success
    )
    assert 0 < successes < anduril_successes
    # The dominant injected type is IOException, as in the paper.
    io_like = sum(1 for row in rows if "IOException" in row[2] or "Socket" in row[2]
                  or "Connect" in row[2] or "FileNot" in row[2])
    assert io_like >= 18
