"""Early-verdict cutoff: end-to-end cost of deciding runs at the horizon.

One measurement lands in ``benchmarks/out/BENCH_verdict.json``: a cold-
cache reproduction workflow (search + confirmation replays; see
``verdict_sweep.py``) per case with the cutoff off, then on, each leg in
a fresh interpreter.  Outcomes must be identical — the monitor may only
move wall clock, never what a search finds or what a replay proves —
and the artifact records per-case and median speedups.  CI gates the
confirmation-replay median via ``check_bench_regression.py
--verdict-*``: a drop below 1.3x fails the build.

The case pool is the late-failing ``bench_cases.py`` variants plus the
soft-fault registry cases f23–f27.  Both populations matter: the scaled
variants fail deep (minutes of post-symptom tail at real-system scale),
while f23–f27 carry the audited monotone state predicates the compiler
must trust.  Two of the pool (f16-xl's stuck-task oracle, f18-xl's
non-monotone predicate) can never legally cut off — they stay in the
artifact as the zero-overhead control group but are excluded from the
speedup medians, which would otherwise measure the compiler's refusals
rather than the cutoff.

Wall-clock assertions are deliberately loose (a loaded CI host must not
flake the suite); the JSON artifact is the measurement of record.
"""

import json
import os
import statistics
import subprocess
import sys

from bench_cases import bench_cases
from conftest import emit

from repro.bench import format_table
from repro.bench.tables import OUT_DIR
from repro.core.verdict import compile_cutoff
from repro.failures import get_case

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(BENCH_DIR), "src")

SOFT_FAULT_CASES = ("f23", "f24", "f25", "f26", "f27")


def _case_pool():
    pool = {case.case_id: case for case in bench_cases()}
    for case_id in SOFT_FAULT_CASES:
        pool[case_id] = get_case(case_id)
    return pool


def _run_leg(case_id: str, early_verdict: bool) -> dict:
    """One sweep leg (``verdict_sweep.py``) in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR, BENCH_DIR, env.get("PYTHONPATH", "")]
    )
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(BENCH_DIR, "verdict_sweep.py"),
            case_id,
            "on" if early_verdict else "off",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=1800,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout.strip().splitlines()[-1])


def test_verdict_cutoff():
    pool = _case_pool()

    cases: dict[str, dict] = {}
    replay_speedups, search_speedups = [], []
    for case_id, case in pool.items():
        compiles = compile_cutoff(case.oracle) is not None
        off = _run_leg(case_id, early_verdict=False)
        on = _run_leg(case_id, early_verdict=True)
        # The invariance contract: the cutoff may only move wall clock —
        # search outcomes and what the replays prove must be identical.
        outcome_equal = (
            on["cells"] == off["cells"]
            and on["replay_digest"] == off["replay_digest"]
        )
        assert outcome_equal, (case_id, off["cells"], on["cells"])
        assert on["compiles"] == compiles, case_id
        if compiles:
            # Every ground-truth replay latches the verdict mid-run.
            assert on["cutoffs"] > 0, case_id
        else:
            # Ineligible oracles must pay nothing: no monitor, no cutoff.
            assert on["cutoffs"] == 0, case_id
        replay_speedup = (
            off["replay_seconds"] / on["replay_seconds"]
            if on["replay_seconds"]
            else 0.0
        )
        search_speedup = (
            off["search_seconds"] / on["search_seconds"]
            if on["search_seconds"]
            else 0.0
        )
        if compiles:
            replay_speedups.append(replay_speedup)
            search_speedups.append(search_speedup)
        cases[case_id] = {
            "system": case.system,
            "compiles": compiles,
            "outcome_equal": outcome_equal,
            "off_seconds": off["seconds"],
            "on_seconds": on["seconds"],
            "search_off_seconds": off["search_seconds"],
            "search_on_seconds": on["search_seconds"],
            "replay_off_seconds": off["replay_seconds"],
            "replay_on_seconds": on["replay_seconds"],
            "replay_speedup": round(replay_speedup, 3),
            "search_speedup": round(search_speedup, 3),
            "cutoffs": on["cutoffs"],
            "virtual_seconds_saved": on["virtual_seconds_saved"],
        }

    replay_median = statistics.median(replay_speedups)
    search_median = statistics.median(search_speedups)
    # Acceptance: the cutoff pays for itself where it is legal.  The bar
    # (1.3x median on confirmation replays) sits well under the
    # typically observed margin so CI load cannot flake it.
    assert replay_median >= 1.3, {
        cid: c["replay_speedup"] for cid, c in cases.items()
    }

    rows = [
        (
            case_id,
            entry["system"],
            "yes" if entry["compiles"] else "no",
            f"{entry['replay_off_seconds']:.2f}",
            f"{entry['replay_on_seconds']:.2f}",
            f"{entry['replay_speedup']:.2f}x",
            f"{entry['search_speedup']:.2f}x",
        )
        for case_id, entry in cases.items()
    ]
    rows.append(
        (
            "median*",
            "-",
            "-",
            "-",
            "-",
            f"{replay_median:.2f}x",
            f"{search_median:.2f}x",
        )
    )
    emit(
        "bench_verdict",
        format_table(
            [
                "case",
                "system",
                "cuts",
                "replay off s",
                "replay on s",
                "replay",
                "search",
            ],
            rows,
            title=(
                "early-verdict cutoff speedup (cold cache; "
                "* median over cutoff-eligible cases)"
            ),
            align="lllrrrr",
        ),
    )

    artifact = {
        "schema": 1,
        "config": {
            "search_rounds": 40,
            "confirm_replays": 120,
            "eligible_cases": len(replay_speedups),
        },
        "cases": cases,
        "search": {"median_speedup": round(search_median, 3)},
        "replay": {"median_speedup": round(replay_median, 3)},
        "deterministic_outcomes": True,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, "BENCH_verdict.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"[saved to {path}]")
