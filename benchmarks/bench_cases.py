"""Production-scale bench variants of one failure case per mini system.

The catalog cases (``repro.failures``) are deliberately tiny so the unit
suite stays fast — most replay in under 5 ms, where the fixed cost of a
checkpoint fork (~1-2 ms of fork + pipe + pickle on a small host) buries
the prefix it eliminates.  The paper's subject systems are the opposite
regime: executions run for seconds and the triggering fault fires *deep*
into the run, after the system has done substantial work (that is what
makes their reproduction expensive, and what prefix elimination is for).

Each bench case here is a catalog case whose failure scenario *develops
late*: the workload is scaled up (more clients, more traffic, more
streamed files) and staggered across the horizon, the ground-truth
occurrence is moved deep into the trace, and the oracle additionally
requires that the system had made substantial progress before the
failure hit.  The defect, the fault site, and the failure symptom are
exactly the catalog's; only the *when* moves.  The progress gate is what
keeps the search honest — a shallow injection at the same site produces
the same symptom too early and does not reproduce the recorded failure.

Progress-at-failure is read from frozen state where the failure is fatal
(f1: the cluster stops serving, so per-client completion markers stop
appearing; f21: the shared channel is wedged, so ``streams_completed``
stops moving) and from a watcher snapshot where it is not (f5: the
namenode keeps serving after the roll failure; f18: the table task
restarts and keeps emitting).  The watcher is a plain sim task with no
instrumented operations, so it adds no fault sites and no trace requests.

The cases are intentionally NOT registered in the global catalog; they
exist only for benchmarks.
"""

from __future__ import annotations

import dataclasses

from repro.core.oracle import StatePredicateOracle
from repro.failures import get_case
from repro.failures.hdfs import _base_cluster as _dfs_base
from repro.failures.hdfs import _client_script as _dfs_client_script
from repro.failures.zk import _boot_cluster as _zk_boot
from repro.sim.cluster import Cluster
from repro.sim.errors import SocketException
from repro.systems.base import Component
from repro.systems.minicass.repair import WriteDriver
from repro.systems.minicass.replica import Replica
from repro.systems.minicass.streaming import StreamingService
from repro.systems.minidfs.client import DfsClient
from repro.systems.minihbase.hdfs_stream import MiniDfsService
from repro.systems.minihbase.regionserver import RegionServer
from repro.systems.minihbase.replication import ReplicationQueueClaimer
from repro.systems.minikafka.broker import Broker, BrokerClient
from repro.systems.minikafka.table import INPUT_TOPIC, EmitOnChangeProcessor
from repro.systems.minizk.client import ZkClient

__all__ = ["bench_cases"]


def _watch_failure(cluster, failed, snapshot_key, progress, period=0.1):
    """Snapshot workload progress the first time ``failed(state)`` holds.

    For defects the system survives, the final state no longer says how
    far the workload had come when the failure struck — this watcher
    records it as it happens.  Pure sleeps and dict reads only: no
    instrumented operations, so the fault space and trace are untouched.
    """

    def watch():
        while True:
            yield cluster.sleep(period)
            if snapshot_key not in cluster.state and failed(cluster.state):
                cluster.state[snapshot_key] = progress(cluster.state)

    cluster.spawn("bench-failure-watch", watch())


# --------------------------------------------------------------------- f1-xl

ZK_CLIENTS = 48
ZK_OPS = 40
#: Ground-truth txnlog-append occurrence; tuned against the probe so the
#: failure lands after most of the staggered bulk workload has finished
#: (see the gate below) but comfortably inside the horizon.
ZK_DEEP_OCCURRENCE = 1500


def _zk_scaled(cluster: Cluster) -> None:
    """f1's write workload with 48 staggered bulk clients."""
    _zk_boot(cluster)
    for index in range(1, ZK_CLIENTS + 1):
        ops = [f"create /app/node{index}-{i}" for i in range(ZK_OPS)]
        client = ZkClient(cluster, f"cli{index}", "zk3", ops)

        def staggered(c=client, start=1.0 + 0.5 * (index - 1)):
            yield c.sleep(start)
            yield from c.run()

        cluster.spawn(f"cli{index}", staggered())


def _zk_clients_done(state) -> int:
    return sum(
        1
        for index in range(1, ZK_CLIENTS + 1)
        if state.get(f"cli{index}_done", 0) >= ZK_OPS - 8
    )


#: The outage is fatal, so clients that had not finished when ZooKeeper
#: died never set their completion marker: the done-count in the final
#: state IS the progress at failure time.
_ZK_GATE = StatePredicateOracle(
    lambda state: _zk_clients_done(state) >= 26,
    "outage hit after most bulk clients had finished",
    # Audited: per-client done counters only ever increase, so the count
    # of clients over the threshold is nondecreasing.
    monotone=True,
)


# --------------------------------------------------------------------- f5-xl

DFS_LOADS = 36
DFS_FILES_PER_LOAD = 10
#: Edit rolls tick roughly every 1.5 virtual seconds; this occurrence
#: lands the roll failure late in the staggered bulk-load window.
DFS_DEEP_OCCURRENCE = 15


def _hdfs_scaled(cluster: Cluster) -> None:
    """f5's workload plus 36 staggered write-only bulk loaders."""
    _dfs_base(cluster)
    client = DfsClient(cluster, "dfsclient")
    cluster.spawn(
        "dfsclient",
        _dfs_client_script(client, ["/data/a", "/data/b", "/data/c", "/data/d"]),
    )
    for index in range(1, DFS_LOADS + 1):
        extra = DfsClient(cluster, f"dfsload{index}")
        files = [f"/load{index}/f{i}" for i in range(DFS_FILES_PER_LOAD)]

        def load(c=extra, fs=files, start=0.45 * (index - 1), name=f"dfsload{index}"):
            yield cluster.sleep(start)
            yield from _dfs_client_script(c, fs, read=False, pace=0.3)
            cluster.state[f"{name}_done"] = True
            c.log.info("Bulk load %s finished %d files", name, len(fs))

        cluster.spawn(f"dfsload{index}", load())
    # HDFS-4233 is survivable — the namenode keeps serving — so progress
    # has to be sampled the moment the backup goes invalid.
    _watch_failure(
        cluster,
        lambda state: state.get("backup_valid") is False,
        "loads_at_roll_failure",
        lambda state: sum(
            1
            for index in range(1, DFS_LOADS + 1)
            if state.get(f"dfsload{index}_done")
        ),
        period=0.2,
    )


_DFS_GATE = StatePredicateOracle(
    lambda state: state.get("loads_at_roll_failure", 0) >= 14,
    "edit roll failed late in the bulk-load window",
    # Audited: the watcher writes the snapshot key exactly once.
    monotone=True,
)


# -------------------------------------------------------------------- f18-xl

KAFKA_CHANGES = 144
#: Flush occurrence K loses change K — provided record K-1 is not
#: followed by a suppressible duplicate that would re-flush it after the
#: restart (every third record is; 119 % 3 != 0 avoids that).  Late in
#: the feed.
KAFKA_DEEP_OCCURRENCE = 120


def _table_records() -> list:
    """A long emit-on-change feed: every record is a change, and every
    third record is followed by a duplicate the table must suppress."""
    records = []
    for index in range(KAFKA_CHANGES):
        key = f"k{index % 8}"
        records.append((key, f"v{index}"))
        if index % 3 == 0:
            records.append((key, f"v{index}"))
    return records


def _kafka_scaled(cluster: Cluster) -> None:
    """f18's emit-on-change table fed a long change list, plus 40 background feeds."""
    Broker(cluster, "broker1").start()
    EmitOnChangeProcessor(cluster, "table-task", "broker1").start()
    feeder = BrokerClient(cluster, "table-feeder", "broker1")
    records = _table_records()

    def feed():
        yield feeder.sleep(0.3)
        for key, value in records:
            yield from feeder.produce(INPUT_TOPIC, (key, value))
            yield feeder.jitter(0.1)
        cluster.state["feed_done"] = True

    cluster.spawn("table-feeder", feed())
    cluster.state["expected_emits"] = KAFKA_CHANGES
    for index in range(1, 41):
        bg = BrokerClient(cluster, f"bg-feeder{index}", "broker1")

        def background(f=bg, topic=f"bg-topic{index}"):
            yield f.sleep(0.2)
            for value in range(70):
                yield from f.produce(topic, ("bg", value))
                yield f.jitter(0.25)

        cluster.spawn(f"bg-feeder{index}", background())
    # The task restarts and keeps emitting after the flush failure, so
    # the emit count at restart time has to be sampled as it happens.
    _watch_failure(
        cluster,
        lambda state: state.get("table_restarts", 0) >= 1,
        "emits_at_restart",
        lambda state: state.get("table_emitted", 0),
        period=0.1,
    )


_KAFKA_GATE = StatePredicateOracle(
    lambda state: state.get("emits_at_restart", 0) >= 104,
    "flush failed late in the feed",
    # Audited: the watcher writes the snapshot key exactly once.
    monotone=True,
)


# -------------------------------------------------------------------- f16-xl

#: The claimers only wake after the WAL traffic has been running for a
#: while — the claim race is inherently a late event in this deployment,
#: so the ground-truth occurrence stays 1 and needs no gate.
HBASE_CLAIM_DELAY = 12.0


def _hbase_scaled(cluster: Cluster) -> None:
    """f16's claim race after a long multi-region WAL write window."""
    MiniDfsService(cluster).start()
    rs1 = RegionServer(cluster, "rs1", roll_period=2.5)
    rs1.add_region("regionA")
    rs1.add_region("regionB")
    rs1.add_region("regionC")
    rs1.start(burst=8, burst_period=0.2)
    rs2 = RegionServer(cluster, "rs2")
    for index in (3, 4):
        extra = RegionServer(cluster, f"rs{index}", roll_period=3.0)
        extra.add_region(f"load-region{index}a")
        extra.add_region(f"load-region{index}b")
        extra.start(burst=8, burst_period=0.25)
    cluster.disk.write(ReplicationQueueClaimer.QUEUE_PATH, b"edit\n" * 8)
    ReplicationQueueClaimer(cluster, rs1, delay=HBASE_CLAIM_DELAY).start()
    ReplicationQueueClaimer(cluster, rs2, delay=HBASE_CLAIM_DELAY + 0.5).start()


# -------------------------------------------------------------------- f21-xl

CASS_FILES = 56
#: Stream tasks take the shared proxy in turn (one transfer per file);
#: this occurrence is the transfer of a late file.
CASS_DEEP_OCCURRENCE = 44


class _CassFeeder(Component):
    """A named WriteDriver clone so many can run side by side."""

    def __init__(self, cluster, replicas, name: str, count: int) -> None:
        super().__init__(cluster, name=name)
        self.replicas = list(replicas)
        self.count = count

    def start(self) -> None:
        self.cluster.spawn(self.name, self.run())

    def run(self):
        yield self.sleep(1.0)
        for index in range(self.count):
            replica = self.replicas[index % len(self.replicas)]
            try:
                self.env.sock_send(
                    self.name,
                    replica,
                    "write",
                    ("cf1", f"{self.name}-k{index}", f"v{index}"),
                )
            except SocketException as error:
                self.log.warn(
                    "Write %d to %s failed: %s", index, replica, error
                )
            yield self.jitter(0.2)


def _cass_scaled(cluster: Cluster) -> None:
    """f21's streaming workload with 56 staggered files and 40 feeders."""
    names = ("cass1", "cass2", "cass3")
    replicas = [Replica(cluster, name) for name in names]
    for replica in replicas:
        replica.start()
    files = [(f"/cass/stream/file{i}", 10 + 2 * (i % 6)) for i in range(CASS_FILES)]
    StreamingService(cluster, files).start()
    WriteDriver(cluster, names, count=40).start()
    for index in range(1, 41):
        _CassFeeder(cluster, names, f"cass-feeder{index}", count=96).start()


#: The wedged proxy kills every later stream task, so the completed-file
#: counter freezes at failure time: final state IS progress at failure.
_CASS_GATE = StatePredicateOracle(
    lambda state: state.get("streams_completed", 0) >= 38,
    "channel wedged after most files had streamed",
    # Audited: the completed-file counter only ever increases.
    monotone=True,
)


# ------------------------------------------------------------------ assembly


def _deep(case, occurrence: int):
    return dataclasses.replace(
        case.ground_truth, occurrence=occurrence
    )


def bench_cases() -> list:
    """One scaled, late-failing case per mini system."""
    f1 = get_case("f1")
    zk = dataclasses.replace(
        f1,
        case_id="f1-xl",
        workload=_zk_scaled,
        horizon=30.0,
        oracle=f1.oracle & _ZK_GATE,
        ground_truth=_deep(f1, ZK_DEEP_OCCURRENCE),
        alternates=[],
    )
    f5 = get_case("f5")
    hdfs = dataclasses.replace(
        f5,
        case_id="f5-xl",
        workload=_hdfs_scaled,
        horizon=26.0,
        oracle=f5.oracle & _DFS_GATE,
        ground_truth=_deep(f5, DFS_DEEP_OCCURRENCE),
        alternates=[],
    )
    f16 = get_case("f16")
    hbase = dataclasses.replace(
        f16, case_id="f16-xl", workload=_hbase_scaled, horizon=18.0
    )
    f18 = get_case("f18")
    kafka = dataclasses.replace(
        f18,
        case_id="f18-xl",
        workload=_kafka_scaled,
        horizon=22.0,
        oracle=f18.oracle & _KAFKA_GATE,
        ground_truth=_deep(f18, KAFKA_DEEP_OCCURRENCE),
        alternates=[],
    )
    f21 = get_case("f21")
    cass = dataclasses.replace(
        f21,
        case_id="f21-xl",
        workload=_cass_scaled,
        horizon=26.0,
        oracle=f21.oracle & _CASS_GATE,
        ground_truth=_deep(f21, CASS_DEEP_OCCURRENCE),
        alternates=[],
    )
    return [zk, hdfs, hbase, kafka, cass]
