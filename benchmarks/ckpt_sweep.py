"""One compare-sweep leg for the sim-kernel benchmark, as a script.

``test_sim_kernel.py`` measures the end-to-end checkpoint speedup by
running each (case, checkpoint on/off) leg in a *fresh interpreter*:
within one long-lived process, allocator and GC aging inflate whichever
leg runs second by enough to drown the effect being measured.  This
module is that leg.  Output is one JSON object on the last stdout line.

A leg is the full reproduction workflow of the paper, twice over:

1. **Search** — the feedback searches (anduril, multiply-feedback) plus
   a bounded budget of the strongest occurrence-sampling baseline
   (random).  Uniform sampling spends most of every run in the
   post-injection tail, which no prefix checkpoint can eliminate, so
   this phase mostly checks that checkpointing never *hurts* a broad
   search.
2. **Confirmation replays** — the reproduction plan is replayed
   :data:`CONFIRM_REPLAYS` times with the run cache bypassed, the way a
   developer iterates on a reproduced failure while debugging.  The
   bench cases fail *deep* (the whole point of their late-failing
   design), so each replay's fault-free prefix is 70-95% of the trace —
   exactly the waste the checkpoint ladder exists to kill.

Both legs run the identical composition; the only difference is the
``checkpoint`` knob.  The leg also emits a digest of one replay result
so the harness can assert fork-served and inline replays are
byte-identical.
"""

from __future__ import annotations

import json
import shutil
import sys
import tempfile
import time

#: Round budgets for the search phase.  max_seconds stays effectively
#: unbounded so wall clock can never cut the two legs at different
#: rounds, which would break outcome equality between them.
SEARCH_ROUNDS = 40
RANDOM_ROUNDS = 10
#: Cache-bypassed replays of the reproduction plan per leg.
CONFIRM_REPLAYS = 120


def run_leg(case_id: str, checkpoint: bool) -> dict:
    from bench_cases import bench_cases

    from repro import cache as runcache
    from repro.bench import run_anduril, run_baseline
    from repro.injection.fir import InjectionPlan
    from repro.sim.checkpoint import CheckpointPool, snapshot_fingerprint
    from repro.sim.cluster import execute_workload

    case = {c.case_id: c for c in bench_cases()}[case_id]
    case.failure_log()  # generated once per process; keep it out of the timing
    cache_dir = tempfile.mkdtemp(prefix="ckpt-sweep-")
    pool = None
    try:
        runcache.reset()
        runcache.configure(enabled=True, disk_dir=cache_dir)
        cells = []
        started = time.perf_counter()
        outcome = run_anduril(
            case,
            max_rounds=SEARCH_ROUNDS,
            max_seconds=3600.0,
            checkpoint=checkpoint,
        )
        cells.append(["anduril", outcome.success, outcome.rounds])
        for name, rounds in (
            ("multiply-feedback", SEARCH_ROUNDS),
            ("random", RANDOM_ROUNDS),
        ):
            strategy_outcome = run_baseline(
                name,
                case,
                max_rounds=rounds,
                max_seconds=3600.0,
                checkpoint=checkpoint,
            )
            cells.append(
                [name, strategy_outcome.success, strategy_outcome.rounds]
            )
        search_seconds = time.perf_counter() - started

        # Confirmation replays: re-execute the reproduction plan with the
        # cache bypassed (a cache hit would measure nothing).  The plan
        # is the ground-truth one — identical in both legs by design,
        # independent of what the search phase happened to find.
        plan = InjectionPlan.single(case.ground_truth_instance())
        replay_started = time.perf_counter()
        probe = execute_workload(
            case.workload, horizon=case.horizon, seed=case.seed
        )
        if checkpoint:
            pool = CheckpointPool(
                case.workload, case.horizon, case.seed, probe.trace
            )
            runner = pool.runner
        else:
            runner = execute_workload
        result = None
        for _ in range(CONFIRM_REPLAYS):
            result = runner(
                case.workload, horizon=case.horizon, seed=case.seed, plan=plan
            )
        replay_seconds = time.perf_counter() - replay_started
        digest = snapshot_fingerprint(
            {
                "log": result.log.to_text(),
                "state": result.state,
                "injected": result.injected,
                "stuck": sorted(task.name for task in result.stuck),
                "crashed": sorted(task.name for task in result.crashed),
                "end_time": result.end_time,
            }
        )
    finally:
        if pool is not None:
            pool.close()
        runcache.reset()
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "cells": cells,
        "search_seconds": round(search_seconds, 3),
        "replay_seconds": round(replay_seconds, 3),
        "seconds": round(search_seconds + replay_seconds, 3),
        "replay_digest": digest,
    }


if __name__ == "__main__":
    print(json.dumps(run_leg(sys.argv[1], sys.argv[2] == "on")))
