"""Ablation of the paper's in-text design alternatives (§5.2.3–§5.2.4).

Beyond the Table-2 variants, the paper *argues* for two specific design
choices without tabulating them:

* combining per-observable priorities with ``min`` rather than ``sum``
  ("the summation can be less sensitive to the effect of feedback");
* measuring temporal distance in *log messages* rather than by the
  fault instance's relative order ("order focuses too much on" the
  frequently executed fault).

This bench runs the full feedback search under each alternative on the
whole dataset and on the hard timing cases.
"""

from conftest import emit

from repro.bench import format_table, run_anduril
from repro.failures import all_cases

SETTINGS = [
    ("min + messages (paper)", dict(aggregate="min", temporal_mode="messages")),
    ("sum + messages", dict(aggregate="sum", temporal_mode="messages")),
    ("min + order", dict(aggregate="min", temporal_mode="order")),
    ("sum + order", dict(aggregate="sum", temporal_mode="order")),
]


def compute_ablation():
    cases = all_cases()
    rows = []
    summary = {}
    for label, overrides in SETTINGS:
        cells = [label]
        successes = 0
        total_rounds = 0
        for case in cases:
            outcome = run_anduril(
                case, max_rounds=600, max_seconds=30.0, **overrides
            )
            cells.append(str(outcome.rounds) if outcome.success else "-")
            if outcome.success:
                successes += 1
                total_rounds += outcome.rounds
        rows.append(cells)
        summary[label] = (successes, total_rounds)
    return cases, rows, summary


def test_design_choice_ablation(benchmark):
    cases, rows, summary = benchmark.pedantic(
        compute_ablation, rounds=1, iterations=1
    )
    headers = ["Design", *(case.case_id for case in cases)]
    lines = [
        f"{label}: {successes}/22 reproduced, {rounds} total rounds"
        for label, (successes, rounds) in summary.items()
    ]
    emit(
        "ablation_design_choices",
        format_table(headers, rows, title="Design-choice ablation (rounds)")
        + "\n\n"
        + "\n".join(lines),
    )
    paper_successes, paper_rounds = summary["min + messages (paper)"]
    # The paper's configuration reproduces everything...
    assert paper_successes == 22
    # ...and no alternative configuration strictly beats it on both
    # success count and total rounds.
    for label, (successes, rounds) in summary.items():
        if label == "min + messages (paper)":
            continue
        assert not (
            successes > paper_successes
            or (successes == paper_successes and rounds < 0.5 * paper_rounds)
        ), f"{label} dominates the paper configuration"
