"""Tables 4 and 8: Explorer runtime performance.

Per system (medians over its cases, Table 4) and per case (Table 8):
injection requests received by the FIR per run, mean per-decision
latency, per-round initialization time (priority recomputation), and the
workload execution time.
"""

import statistics

from conftest import emit

from repro.bench import format_table
from repro.failures import all_cases

SYSTEM_ORDER = ("zookeeper", "hdfs", "hbase", "kafka", "cassandra")


def compute_table4(anduril_outcomes):
    per_case_rows = []
    per_system: dict[str, list] = {name: [] for name in SYSTEM_ORDER}
    for case in all_cases():
        outcome = anduril_outcomes[case.case_id]
        per_case_rows.append(
            (
                f"{case.case_id} ({case.issue})",
                outcome.median_requests,
                f"{outcome.mean_decision_us:.2f}us",
                f"{outcome.median_init_ms:.2f}ms",
                f"{outcome.median_workload_ms:.0f}ms",
            )
        )
        per_system[case.system].append(outcome)
    system_rows = []
    for system in SYSTEM_ORDER:
        outcomes = per_system[system]
        system_rows.append(
            (
                system,
                int(statistics.median([o.median_requests for o in outcomes])),
                f"{statistics.median([o.mean_decision_us for o in outcomes]):.2f}us",
                f"{statistics.median([o.median_init_ms for o in outcomes]):.2f}ms",
                f"{statistics.median([o.median_workload_ms for o in outcomes]):.0f}ms",
            )
        )
    return system_rows, per_case_rows


def test_table4(benchmark, anduril_outcomes):
    system_rows, per_case_rows = benchmark.pedantic(
        compute_table4, args=(anduril_outcomes,), rounds=1, iterations=1
    )
    headers = ["System", "Inject. req.", "Decision", "Round init", "Workload"]
    emit(
        "table4_performance",
        format_table(headers, system_rows, title="Table 4: Explorer performance")
        + "\n\n"
        + format_table(
            ["Failure", "Inject. req.", "Decision", "Round init", "Workload"],
            per_case_rows,
            title="Table 8: per-case runtime details",
        ),
    )
    for row in system_rows:
        requests = row[1]
        decision_us = float(row[2][:-2])
        # Decisions stay cheap (paper: sub-microsecond to tens of us) and
        # every system exercises a non-trivial dynamic fault space.
        assert requests > 50
        assert decision_us < 1000
