"""Table 2: reproduction efficacy — ANDURIL, its ablation variants, and
the state-of-the-art baselines on all 22 failures.

Cells are ``rounds/time``; "-" means the strategy did not reproduce the
failure within its budget (the paper's 24-hour-cap analog).
"""

from conftest import emit

from repro.bench import format_table, run_baseline
from repro.bench import summary as bench_summary
from repro.failures import all_cases

VARIANTS = (
    "exhaustive",
    "fault-site-distance",
    "fault-site-distance-limit",
    "fault-site-feedback",
    "multiply-feedback",
)
SOTA = ("fate", "crashtuner")
BUDGET = dict(max_rounds=300, max_seconds=20.0)


def compute_table2(anduril_outcomes):
    rows = []
    successes = {name: 0 for name in ("anduril", *VARIANTS, *SOTA)}
    rounds = {name: [] for name in ("anduril", *VARIANTS, *SOTA)}
    for case in all_cases():
        anduril = anduril_outcomes[case.case_id]
        row = [f"{case.case_id} ({case.issue})", anduril.cell]
        if anduril.success:
            successes["anduril"] += 1
            rounds["anduril"].append(anduril.rounds)
        for name in (*VARIANTS, *SOTA):
            outcome = run_baseline(name, case, **BUDGET)
            # Coverage fractions land next to ANDURIL's in the summary's
            # "coverage" section, so bench_summary.json compares them.
            bench_summary.record_strategy_outcome(outcome)
            row.append(outcome.cell)
            if outcome.success:
                successes[name] += 1
                rounds[name].append(outcome.rounds)
        rows.append(row)
    return rows, successes, rounds


def test_table2(benchmark, anduril_outcomes):
    rows, successes, rounds = benchmark.pedantic(
        compute_table2, args=(anduril_outcomes,), rounds=1, iterations=1
    )
    headers = ["Failure", "ANDURIL", *VARIANTS, *SOTA]
    summary = " | ".join(f"{k}: {v}/22" for k, v in successes.items())
    means = " | ".join(
        f"{name}: {sum(values) / len(values):.1f}"
        for name, values in rounds.items()
        if values
    )
    emit(
        "table2_efficacy",
        format_table(headers, rows, title="Table 2: reproduction efficacy")
        + "\n\nreproduced: "
        + summary
        + "\nmean rounds (on successes): "
        + means,
    )

    # Headline shapes from the paper, adapted to our 100x smaller fault
    # spaces (coverage tools may finish inside the cap here, but pay a
    # large round multiple — the paper's 6x-280x inefficiency):
    # (1) ANDURIL reproduces every failure.
    assert successes["anduril"] == 22
    # (2) No ablation variant beats the full design on success count.
    for name in VARIANTS:
        assert successes[name] <= successes["anduril"], name
    # (3) CrashTuner (crash-timing oriented) reproduces only a fraction.
    assert successes["crashtuner"] <= 12
    assert successes["crashtuner"] < successes["anduril"]
    # (4) Coverage-first FATE pays a large round multiple over ANDURIL.
    anduril_mean = sum(rounds["anduril"]) / len(rounds["anduril"])
    fate_mean = sum(rounds["fate"]) / max(len(rounds["fate"]), 1)
    assert fate_mean >= 3 * anduril_mean
    # (5) Static pruning alone (exhaustive) needs more total rounds than
    # the feedback-driven search.
    assert sum(rounds["exhaustive"]) > sum(rounds["anduril"])
    # (6) ANDURIL's median rounds stay low (paper: median 11).
    ordered = sorted(rounds["anduril"])
    assert ordered[len(ordered) // 2] <= 20
