"""Simulator-kernel throughput and checkpoint/fork cost.

Three measurements land in ``benchmarks/out/BENCH_simkernel.json``:

* **kernel** — raw event-loop throughput (events/sec) on a synthetic
  queue-and-timer workload that never touches the env boundary, so the
  number isolates the scheduler hot loop (heap ops, task resumption)
  from FIR bookkeeping.  CI gates this via ``check_bench_regression.py
  --simkernel-*``: a >25% drop fails the build.
* **checkpoint** — what a prefix snapshot costs: opening a holder
  process (fork + prefix replay to the trigger), and the per-plan fork
  round-trip (fork + suffix replay + result pickle), against the full
  inline replay it replaces.
* **compare** — the headline: one cold-cache reproduction workflow
  (search + confirmation replays; see ``ckpt_sweep.py``) per scaled
  mini system with checkpointing off, then on.  Each leg runs in a
  fresh interpreter so allocator aging in the first leg cannot tax the
  second.  Outcomes and replay results must be identical; the artifact
  records the per-system wall-clock speedup.

The compare uses the late-failing cases from ``bench_cases.py``, not
the unit-test catalog: checkpointing attacks the fault-free *prefix*,
so its effect is only visible on cases whose failures live deep in the
trace — which is also the regime the paper's real-world subjects
occupy (a failure five minutes into a run, not five milliseconds).

Wall-clock assertions are deliberately loose (a loaded CI host must not
flake the suite); the JSON artifact is the measurement of record.
"""

import json
import os
import statistics
import subprocess
import sys
import time

import pytest
from bench_cases import bench_cases
from conftest import emit

from repro.bench import format_table
from repro.bench.tables import OUT_DIR
from repro.injection.fir import InjectionPlan
from repro.injection.sites import FaultInstance
from repro.sim import Checkpoint, checkpoint_supported, execute_workload
from repro.sim.cluster import Cluster

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
SRC_DIR = os.path.join(os.path.dirname(BENCH_DIR), "src")

#: Items pushed through the synthetic kernel workload per pass.
KERNEL_ITEMS = 30_000
#: Per-plan fork round-trips (and inline replays) timed for the medians.
FORK_SAMPLES = 15
#: Where the microbench parks its holder, as a fraction of the trace —
#: the depth regime the bench cases' ground truths live in.
FORK_DEPTH = 0.8


def _kernel_workload(cluster: Cluster) -> None:
    """Queue ping-pong plus timers: scheduler traffic, no env calls."""
    queue = cluster.queue("kernel", capacity=8)

    def producer():
        for index in range(KERNEL_ITEMS):
            yield queue.put(index)
            if index % 64 == 0:
                yield cluster.sleep(0.001)

    def consumer():
        for _ in range(KERNEL_ITEMS):
            yield queue.get()

    def ticker():
        for _ in range(KERNEL_ITEMS // 64):
            yield cluster.sleep(0.002)

    cluster.spawn("producer", producer())
    cluster.spawn("consumer", consumer())
    cluster.spawn("ticker", ticker())


def _measure_kernel() -> dict:
    """Best-of-3 events/sec on the synthetic workload."""
    best = None
    for _ in range(3):
        cluster = Cluster(seed=0)
        _kernel_workload(cluster)
        started = time.perf_counter()
        cluster.sim.run(until=1e6)
        seconds = time.perf_counter() - started
        events = cluster.sim.events_executed
        rate = events / seconds if seconds else 0.0
        if best is None or rate > best["events_per_sec"]:
            best = {
                "events": events,
                "seconds": round(seconds, 4),
                "events_per_sec": round(rate, 1),
            }
    return best


def _result_signature(result) -> tuple:
    """The outcome-relevant fields of a run, for equality checks."""
    return (
        str(result.injected_instance),
        [str(record) for record in result.log],
        [(e.site_id, e.occurrence) for e in result.trace],
        result.site_counts,
        result.end_time,
        sorted(t.name for t in result.stuck),
        sorted(t.name for t in result.crashed),
    )


def _measure_checkpoint(case) -> dict:
    """Holder-open and fork round-trip cost vs full inline replay."""
    probe = execute_workload(case.workload, horizon=case.horizon, seed=case.seed)
    trace = probe.trace
    fork_point = max(int(len(trace) * FORK_DEPTH), 1)
    # Plans that arm a pair at/after the fork point, one per sample, so
    # consecutive forks do distinct (but comparable) suffix work.
    plans = []
    for event in trace[fork_point - 1:]:
        plans.append(
            InjectionPlan.of(
                [FaultInstance(event.site_id, "IOException", event.occurrence)]
            )
        )
        if len(plans) >= FORK_SAMPLES:
            break

    started = time.perf_counter()
    checkpoint = Checkpoint(
        case.workload, case.horizon, case.seed, None, fork_point
    )
    first = checkpoint.run(plans[0])
    open_seconds = time.perf_counter() - started
    assert first is not None, "first fork off a fresh holder failed"

    fork_times, inline_times = [], []
    try:
        for plan in plans:
            started = time.perf_counter()
            forked = checkpoint.run(plan)
            fork_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            inline = execute_workload(
                case.workload, horizon=case.horizon, seed=case.seed, plan=plan
            )
            inline_times.append(time.perf_counter() - started)
            assert forked is not None
            assert _result_signature(forked) == _result_signature(inline)
    finally:
        checkpoint.close()

    return {
        "case": case.case_id,
        "trace_requests": len(trace),
        "fork_point": fork_point,
        "open_ms": round(open_seconds * 1e3, 3),
        "fork_ms_median": round(statistics.median(fork_times) * 1e3, 3),
        "inline_ms_median": round(statistics.median(inline_times) * 1e3, 3),
        "fork_samples": len(fork_times),
    }


def _run_leg(case_id: str, checkpoint: bool) -> dict:
    """One compare leg (``ckpt_sweep.py``) in a fresh interpreter."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [SRC_DIR, BENCH_DIR, env.get("PYTHONPATH", "")]
    )
    proc = subprocess.run(
        [
            sys.executable,
            os.path.join(BENCH_DIR, "ckpt_sweep.py"),
            case_id,
            "on" if checkpoint else "off",
        ],
        env=env,
        capture_output=True,
        text=True,
        timeout=1200,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return json.loads(proc.stdout.strip().splitlines()[-1])


@pytest.mark.skipif(
    not checkpoint_supported(), reason="requires os.fork (POSIX)"
)
def test_sim_kernel():
    kernel = _measure_kernel()
    # Loose sanity floor only; the real gate compares against the
    # committed artifact with a noise-tolerant threshold.
    assert kernel["events_per_sec"] > 10_000, kernel

    cases = {case.case_id: case for case in bench_cases()}
    checkpoint_cost = _measure_checkpoint(cases["f1-xl"])

    compare: dict[str, dict] = {}
    speedups = []
    for case_id, case in cases.items():
        off = _run_leg(case_id, checkpoint=False)
        on = _run_leg(case_id, checkpoint=True)
        # The invariance contract: forking may only move wall clock —
        # search outcomes and replayed run results must be identical.
        assert on["cells"] == off["cells"], case_id
        assert on["replay_digest"] == off["replay_digest"], case_id
        speedup = off["seconds"] / on["seconds"] if on["seconds"] else 0.0
        speedups.append(speedup)
        compare[case_id] = {
            "system": case.system,
            "off_seconds": off["seconds"],
            "on_seconds": on["seconds"],
            "search_off_seconds": off["search_seconds"],
            "search_on_seconds": on["search_seconds"],
            "replay_off_seconds": off["replay_seconds"],
            "replay_on_seconds": on["replay_seconds"],
            "speedup": round(speedup, 3),
        }

    faster = sum(1 for s in speedups if s >= 1.5)
    # Acceptance: checkpointing pays for itself on most systems.  The
    # bar (>=1.5x on >=3 of 5) sits well under the typically observed
    # margin so CI load cannot flake it.
    assert faster >= 3, {cid: c["speedup"] for cid, c in compare.items()}

    rows = [
        (
            case_id,
            entry["system"],
            f"{entry['off_seconds']:.2f}",
            f"{entry['on_seconds']:.2f}",
            f"{entry['speedup']:.2f}x",
        )
        for case_id, entry in compare.items()
    ]
    rows.append(
        (
            "median",
            "-",
            "-",
            "-",
            f"{statistics.median(speedups):.2f}x",
        )
    )
    emit(
        "bench_simkernel",
        format_table(
            ["case", "system", "no-ckpt s", "ckpt s", "speedup"],
            rows,
            title=(
                f"checkpoint/fork speedup (cold cache; kernel "
                f"{kernel['events_per_sec']:,.0f} events/s)"
            ),
            align="llrrr",
        ),
    )

    artifact = {
        "schema": 2,
        "kernel": kernel,
        "checkpoint": checkpoint_cost,
        "compare": compare,
        "speedup_median": round(statistics.median(speedups), 3),
        "systems_faster_1_5x": faster,
        "deterministic_outcomes": True,
    }
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, "BENCH_simkernel.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(artifact, handle, indent=2)
        handle.write("\n")
    print(f"[saved to {path}]")
